"""Cross-module property-based tests (hypothesis)."""

import tempfile

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.formulas import WHISPER_OPS, FormulaTree
from repro.core.hints import BrHint, FORMULA_BITS, PC_BITS
from repro.core.injection import HintPlacement
from repro.core.search import FormulaSearch
from repro.core.serialization import placement_from_dict, placement_to_dict
from repro.orchestrator.store import (
    ArtifactStore,
    CorruptArtifact,
    seal_payload,
    unseal_payload,
)
from repro.profiling.pt import PacketDecoder, PacketEncoder, TntPacket
from repro.analysis.reuse import ReuseDistanceTracker
from repro.sim.simulator import SimResult

counts_tables = st.dictionaries(
    st.integers(0, 255), st.integers(1, 50), min_size=0, max_size=40
)

_shared_search = FormulaSearch(fraction=0.002, seed=3)


class TestSearchProperties:
    @given(counts_tables, counts_tables)
    @settings(max_examples=40, deadline=None)
    def test_never_worse_than_best_bias(self, taken, nottaken):
        """Algorithm 1 with the Bias field can always fall back to a
        constant prediction, so its error is bounded by the minority
        direction's sample count."""
        result = _shared_search.find_best_formula(taken, nottaken)
        total_taken = sum(taken.values())
        total_nottaken = sum(nottaken.values())
        assert result.mispredictions <= min(total_taken, total_nottaken)

    @given(counts_tables)
    @settings(max_examples=20, deadline=None)
    def test_constant_branch_is_perfect(self, taken):
        result = _shared_search.find_best_formula(taken, {})
        assert result.mispredictions == 0

    @given(counts_tables, counts_tables)
    @settings(max_examples=20, deadline=None)
    def test_error_bounded_by_total_samples(self, taken, nottaken):
        result = _shared_search.find_best_formula(taken, nottaken)
        assert 0 <= result.mispredictions <= sum(taken.values()) + sum(nottaken.values())


class TestEvaluationProperties:
    @given(
        st.tuples(*[st.sampled_from(WHISPER_OPS)] * 7),
        st.booleans(),
        st.integers(0, 255),
    )
    @settings(max_examples=100)
    def test_output_is_binary(self, ops, invert, history):
        tree = FormulaTree(ops=ops, invert=invert, n_inputs=8)
        assert tree.evaluate(history) in (0, 1)

    @given(st.tuples(*[st.sampled_from(WHISPER_OPS)] * 7), st.integers(0, 255))
    @settings(max_examples=60)
    def test_inversion_involution(self, ops, history):
        plain = FormulaTree(ops=ops, invert=False, n_inputs=8)
        flipped = FormulaTree(ops=ops, invert=True, n_inputs=8)
        assert plain.evaluate(history) != flipped.evaluate(history)


class TestPtProperties:
    @given(st.lists(st.booleans(), min_size=1, max_size=200))
    @settings(max_examples=50)
    def test_tnt_stream_roundtrip(self, outcomes):
        chunks = [
            TntPacket(tuple(outcomes[i : i + 6])).encode()
            for i in range(0, len(outcomes), 6)
        ]
        decoded = PacketDecoder().decode(b"".join(chunks))
        assert decoded.outcomes == outcomes


class TestReuseProperties:
    @given(st.lists(st.integers(0, 12), min_size=1, max_size=150))
    @settings(max_examples=40)
    def test_distance_bounded_by_distinct_keys(self, keys):
        tracker = ReuseDistanceTracker(len(keys))
        n_distinct = len(set(keys))
        for key in keys:
            distance = tracker.access(key)
            if distance is not None:
                assert 0 <= distance < n_distinct


hint_lists = st.lists(
    st.tuples(
        st.integers(0, 2**20),  # branch pc
        st.builds(
            BrHint,
            history_index=st.integers(0, 15),
            formula_bits=st.integers(0, (1 << FORMULA_BITS) - 1),
            bias=st.integers(0, 2),
            pc_offset=st.integers(0, (1 << PC_BITS) - 1),
        ),
    ),
    max_size=10,
)


class TestSerializationProperties:
    @given(st.dictionaries(st.integers(0, 1000), hint_lists, max_size=6))
    @settings(max_examples=40)
    def test_placement_roundtrip(self, placements):
        placement = HintPlacement(placements=dict(placements))
        for block, hints in placements.items():
            for pc, _ in hints:
                placement.host_of_branch[pc] = block
        restored = placement_from_dict(placement_to_dict(placement))
        assert restored.placements == placement.placements


sim_results = st.builds(
    SimResult,
    app=st.sampled_from(["mysql", "clang", "kafka"]),
    config_name=st.text(min_size=1, max_size=12),
    instructions=st.integers(0, 10**9),
    hint_instructions=st.integers(0, 10**6),
    cycles=st.floats(0, 1e12, allow_nan=False),
    base_cycles=st.floats(0, 1e12, allow_nan=False),
    squash_cycles=st.floats(0, 1e12, allow_nan=False),
    icache_stall_cycles=st.floats(0, 1e12, allow_nan=False),
    btb_stall_cycles=st.floats(0, 1e12, allow_nan=False),
    icache_misses=st.integers(0, 10**9),
    icache_misses_covered=st.integers(0, 10**9),
    mispredictions=st.integers(0, 10**9),
)


class TestStoreIntegrityProperties:
    """The store's failure-model contract: damaged bytes must raise
    :class:`CorruptArtifact` (or read as a quarantined miss) — never
    decode to silently wrong data."""

    @given(st.binary(min_size=1, max_size=2048))
    @settings(max_examples=60)
    def test_seal_unseal_roundtrip(self, payload):
        assert unseal_payload(seal_payload(payload), "mem") == payload

    @given(st.binary(min_size=1, max_size=2048), st.data())
    @settings(max_examples=60)
    def test_any_truncation_detected(self, payload, data):
        blob = seal_payload(payload)
        cut = data.draw(st.integers(0, len(blob) - 1), label="cut")
        with pytest.raises(CorruptArtifact):
            unseal_payload(blob[:cut], "mem")

    @given(st.binary(min_size=1, max_size=2048), st.data())
    @settings(max_examples=60)
    def test_any_bit_flip_detected(self, payload, data):
        blob = bytearray(seal_payload(payload))
        position = data.draw(st.integers(0, len(blob) - 1), label="byte")
        bit = data.draw(st.integers(0, 7), label="bit")
        blob[position] ^= 1 << bit
        with pytest.raises(CorruptArtifact):
            unseal_payload(bytes(blob), "mem")

    @given(sim_results, st.data())
    @settings(max_examples=25, deadline=None)
    def test_damaged_artifact_never_served(self, result, data):
        key = "c" * 32
        with tempfile.TemporaryDirectory() as root:
            store = ArtifactStore(root)
            path = store.put("timing", key, result)
            blob = bytearray(path.read_bytes())
            position = data.draw(st.integers(0, len(blob) - 1), label="byte")
            bit = data.draw(st.integers(0, 7), label="bit")
            blob[position] ^= 1 << bit
            path.write_bytes(bytes(blob))
            assert store.get("timing", key) is None  # miss, never wrong data
            assert not path.exists()  # quarantined out of the namespace
            assert store.stats.kinds["timing"].corrupt == 1
            # The rebuild path is clear: a clean re-put round-trips.
            store.put("timing", key, result)
            assert store.get("timing", key) == result
