"""Cross-module property-based tests (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.formulas import WHISPER_OPS, FormulaTree
from repro.core.hints import BrHint, FORMULA_BITS, PC_BITS
from repro.core.injection import HintPlacement
from repro.core.search import FormulaSearch
from repro.core.serialization import placement_from_dict, placement_to_dict
from repro.profiling.pt import PacketDecoder, PacketEncoder, TntPacket
from repro.analysis.reuse import ReuseDistanceTracker

counts_tables = st.dictionaries(
    st.integers(0, 255), st.integers(1, 50), min_size=0, max_size=40
)

_shared_search = FormulaSearch(fraction=0.002, seed=3)


class TestSearchProperties:
    @given(counts_tables, counts_tables)
    @settings(max_examples=40, deadline=None)
    def test_never_worse_than_best_bias(self, taken, nottaken):
        """Algorithm 1 with the Bias field can always fall back to a
        constant prediction, so its error is bounded by the minority
        direction's sample count."""
        result = _shared_search.find_best_formula(taken, nottaken)
        total_taken = sum(taken.values())
        total_nottaken = sum(nottaken.values())
        assert result.mispredictions <= min(total_taken, total_nottaken)

    @given(counts_tables)
    @settings(max_examples=20, deadline=None)
    def test_constant_branch_is_perfect(self, taken):
        result = _shared_search.find_best_formula(taken, {})
        assert result.mispredictions == 0

    @given(counts_tables, counts_tables)
    @settings(max_examples=20, deadline=None)
    def test_error_bounded_by_total_samples(self, taken, nottaken):
        result = _shared_search.find_best_formula(taken, nottaken)
        assert 0 <= result.mispredictions <= sum(taken.values()) + sum(nottaken.values())


class TestEvaluationProperties:
    @given(
        st.tuples(*[st.sampled_from(WHISPER_OPS)] * 7),
        st.booleans(),
        st.integers(0, 255),
    )
    @settings(max_examples=100)
    def test_output_is_binary(self, ops, invert, history):
        tree = FormulaTree(ops=ops, invert=invert, n_inputs=8)
        assert tree.evaluate(history) in (0, 1)

    @given(st.tuples(*[st.sampled_from(WHISPER_OPS)] * 7), st.integers(0, 255))
    @settings(max_examples=60)
    def test_inversion_involution(self, ops, history):
        plain = FormulaTree(ops=ops, invert=False, n_inputs=8)
        flipped = FormulaTree(ops=ops, invert=True, n_inputs=8)
        assert plain.evaluate(history) != flipped.evaluate(history)


class TestPtProperties:
    @given(st.lists(st.booleans(), min_size=1, max_size=200))
    @settings(max_examples=50)
    def test_tnt_stream_roundtrip(self, outcomes):
        chunks = [
            TntPacket(tuple(outcomes[i : i + 6])).encode()
            for i in range(0, len(outcomes), 6)
        ]
        decoded = PacketDecoder().decode(b"".join(chunks))
        assert decoded.outcomes == outcomes


class TestReuseProperties:
    @given(st.lists(st.integers(0, 12), min_size=1, max_size=150))
    @settings(max_examples=40)
    def test_distance_bounded_by_distinct_keys(self, keys):
        tracker = ReuseDistanceTracker(len(keys))
        n_distinct = len(set(keys))
        for key in keys:
            distance = tracker.access(key)
            if distance is not None:
                assert 0 <= distance < n_distinct


hint_lists = st.lists(
    st.tuples(
        st.integers(0, 2**20),  # branch pc
        st.builds(
            BrHint,
            history_index=st.integers(0, 15),
            formula_bits=st.integers(0, (1 << FORMULA_BITS) - 1),
            bias=st.integers(0, 2),
            pc_offset=st.integers(0, (1 << PC_BITS) - 1),
        ),
    ),
    max_size=10,
)


class TestSerializationProperties:
    @given(st.dictionaries(st.integers(0, 1000), hint_lists, max_size=6))
    @settings(max_examples=40)
    def test_placement_roundtrip(self, placements):
        placement = HintPlacement(placements=dict(placements))
        for block, hints in placements.items():
            for pc, _ in hints:
                placement.host_of_branch[pc] = block
        restored = placement_from_dict(placement_to_dict(placement))
        assert restored.placements == placement.placements
