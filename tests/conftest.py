"""Shared fixtures: a tiny but fully-featured synthetic application.

Session-scoped so the expensive artifacts (program, traces, baseline
profile, trained Whisper) are built once for the whole suite.
"""

from __future__ import annotations

import pytest

from repro.bpu.scaling import scaled_tage_sc_l
from repro.core.whisper import WhisperOptimizer
from repro.profiling.profile import BranchProfile
from repro.workloads.generator import generate_trace, get_program
from repro.workloads.spec import AppSpec

TINY_EVENTS = 14_000


@pytest.fixture(scope="session")
def tiny_spec() -> AppSpec:
    return AppSpec(
        name="tinyapp",
        category="datacenter",
        seed=4242,
        n_functions=140,
        n_requests=20,
        footprint_kb=256,
        zipf_exponent=1.1,
        phase_events=5000,
    )


@pytest.fixture(scope="session")
def tiny_program(tiny_spec):
    return get_program(tiny_spec)


@pytest.fixture(scope="session")
def tiny_trace(tiny_spec):
    return generate_trace(tiny_spec, input_id=0, n_events=TINY_EVENTS)


@pytest.fixture(scope="session")
def tiny_trace_alt(tiny_spec):
    return generate_trace(tiny_spec, input_id=1, n_events=TINY_EVENTS)


@pytest.fixture(scope="session")
def tiny_baseline(tiny_trace):
    from repro.bpu.runner import simulate

    return simulate(tiny_trace, scaled_tage_sc_l(64))


@pytest.fixture(scope="session")
def tiny_profile(tiny_trace) -> BranchProfile:
    return BranchProfile.collect([tiny_trace], lambda: scaled_tage_sc_l(64))


@pytest.fixture(scope="session")
def tiny_whisper(tiny_profile, tiny_program):
    optimizer = WhisperOptimizer()
    trained = optimizer.train(tiny_profile)
    placement = optimizer.inject(
        tiny_program, trained, trace=tiny_profile.traces[0]
    )
    runtime = optimizer.build_runtime(placement)
    return optimizer, trained, placement, runtime
