"""History hashing: folds, multi-length folds, the history register."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.geometric import geometric_lengths
from repro.core.hashing import (
    HistoryRegister,
    fold_history,
    fold_history_array,
    fold_many,
    mask_history,
)

histories = st.integers(min_value=0, max_value=(1 << 1024) - 1)
lengths = st.integers(min_value=0, max_value=1024)


class TestMask:
    @given(histories, lengths)
    def test_mask_keeps_low_bits(self, history, length):
        masked = mask_history(history, length)
        assert masked == history & ((1 << length) - 1)

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            mask_history(5, -1)


class TestFold:
    @given(histories)
    def test_short_history_is_identity(self, history):
        # Length <= hash width: the fold is the raw masked history, which
        # is what lets a 15-bit formula directly cover length-8 histories.
        assert fold_history(history, 8) == history & 0xFF

    @given(histories, lengths)
    def test_fold_fits_width(self, history, length):
        assert 0 <= fold_history(history, length) < 256

    @given(histories, lengths)
    def test_fold_only_depends_on_window(self, history, length):
        polluted = history | (1 << (length + 3))
        assert fold_history(history, length) == fold_history(
            mask_history(polluted, length), length
        )

    def test_xor_fold_of_known_chunks(self):
        history = 0xAB | (0xCD << 8) | (0x3 << 16)  # chunks 0xAB, 0xCD, 0x03
        assert fold_history(history, 24) == 0xAB ^ 0xCD ^ 0x03

    def test_partial_top_chunk_is_masked(self):
        history = 0xFF | (0xFF << 8)
        # Length 12 keeps only 4 bits of the second chunk.
        assert fold_history(history, 12) == 0xFF ^ 0x0F

    def test_and_fold(self):
        history = 0xF0 | (0xFF << 8)
        assert fold_history(history, 16, op="and") == 0xF0

    def test_or_fold(self):
        history = 0x0F | (0xF0 << 8)
        assert fold_history(history, 16, op="or") == 0xFF

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            fold_history(1, 8, op="nand")

    @given(histories, st.integers(min_value=1, max_value=1024))
    def test_xor_fold_is_linear(self, history, length):
        # XOR-fold is GF(2)-linear in the history bits.
        other = (history >> 3) | 1
        lhs = fold_history(history ^ other, length)
        rhs = fold_history(history, length) ^ fold_history(other, length)
        assert lhs == rhs


class TestFoldMany:
    @given(histories)
    def test_matches_scalar_fold_at_geometric_lengths(self, history):
        series = geometric_lengths()
        fast = fold_many(history, series)
        slow = [fold_history(history, length) for length in series]
        assert fast == slow

    @given(histories, st.lists(lengths, min_size=1, max_size=8))
    def test_matches_scalar_fold_at_arbitrary_lengths(self, history, length_list):
        fast = fold_many(history, length_list)
        slow = [fold_history(history, length) for length in length_list]
        assert fast == slow

    def test_empty_lengths(self):
        assert fold_many(12345, []) == []

    def test_non_xor_falls_back_to_scalar(self):
        history = (0xF0 << 8) | 0xF3
        assert fold_many(history, [16], op="and") == [fold_history(history, 16, op="and")]


class TestFoldArray:
    def test_matches_scalar_up_to_64_bits(self):
        rng = np.random.default_rng(7)
        values = rng.integers(0, 2**62, size=200)
        for length in (8, 13, 21, 40, 64):
            fast = fold_history_array(values, length)
            slow = [fold_history(int(v), length) for v in values]
            assert fast.tolist() == slow

    def test_rejects_long_lengths(self):
        with pytest.raises(ValueError):
            fold_history_array(np.array([1]), 65)


class TestHistoryRegister:
    def test_push_orders_bits_most_recent_first(self):
        reg = HistoryRegister(16)
        for bit in (1, 0, 1, 1):
            reg.push(bool(bit))
        # Most recent outcome is bit 0.
        assert reg.value() == 0b1011

    def test_value_truncation(self):
        reg = HistoryRegister(16)
        for _ in range(5):
            reg.push(True)
        assert reg.value(3) == 0b111

    def test_wraps_at_max_length(self):
        reg = HistoryRegister(4)
        for bit in (1, 1, 1, 1, 0):
            reg.push(bool(bit))
        assert reg.value() == 0b1110

    def test_hashed_matches_fold(self):
        reg = HistoryRegister(64)
        rng = np.random.default_rng(3)
        for bit in rng.integers(0, 2, 64):
            reg.push(bool(bit))
        for length in (8, 21, 40, 64):
            assert reg.hashed(length) == fold_history(reg.value(), length)

    def test_clear(self):
        reg = HistoryRegister(8)
        reg.push(True)
        reg.clear()
        assert reg.value() == 0

    def test_requesting_beyond_capacity_raises(self):
        reg = HistoryRegister(8)
        with pytest.raises(ValueError):
            reg.value(9)
        with pytest.raises(ValueError):
            reg.hashed(9)

    def test_len(self):
        assert len(HistoryRegister(128)) == 128
