"""Program synthesis, trace generation, and the application registry."""

import numpy as np
import pytest

from repro.workloads.generator import clear_caches, generate_trace, get_program
from repro.workloads.program import INSTRUCTION_BYTES, build_program
from repro.workloads.registry import (
    DATACENTER_APPS,
    SPEC_APPS,
    datacenter_specs,
    get_spec,
    spec_benchmark_specs,
)
from repro.workloads.spec import AppSpec


class TestProgramSynthesis:
    def test_deterministic_in_seed(self, tiny_spec):
        a = build_program(tiny_spec)
        b = build_program(tiny_spec)
        assert np.array_equal(a.block_sizes, b.block_sizes)
        assert np.array_equal(a.block_addrs, b.block_addrs)
        assert np.array_equal(a.is_conditional, b.is_conditional)

    def test_function_chains_are_contiguous(self, tiny_program):
        for func in tiny_program.functions:
            blocks = list(func.blocks)
            assert blocks == list(range(blocks[0], blocks[0] + func.n_blocks))
            assert all(
                tiny_program.func_of_block[b] == func.index for b in blocks
            )

    def test_last_block_of_function_unconditional(self, tiny_program):
        for func in tiny_program.functions:
            last = func.first_block + func.n_blocks - 1
            assert not tiny_program.is_conditional[last]

    def test_conditional_blocks_have_behaviors(self, tiny_program):
        for block in range(tiny_program.n_blocks):
            behavior = tiny_program.behaviors[block]
            if tiny_program.is_conditional[block]:
                assert behavior is not None
            else:
                assert behavior is None

    def test_branch_pc_is_last_instruction(self, tiny_program):
        pcs = tiny_program.branch_pcs
        addrs = tiny_program.block_addrs
        sizes = tiny_program.block_sizes
        assert np.array_equal(pcs, addrs + (sizes - 1) * INSTRUCTION_BYTES)

    def test_block_addresses_strictly_increase(self, tiny_program):
        assert np.all(np.diff(tiny_program.block_addrs) > 0)

    def test_block_of_pc_roundtrip(self, tiny_program):
        for block in (0, 5, tiny_program.n_blocks - 1):
            pc = int(tiny_program.branch_pcs[block])
            assert tiny_program.block_of_pc(pc) == block

    def test_block_of_pc_unknown(self, tiny_program):
        assert tiny_program.block_of_pc(0x1) is None

    def test_predecessors_in_chain(self, tiny_program):
        func = tiny_program.functions[1]
        block = func.first_block + min(3, func.n_blocks - 1)
        preds = tiny_program.predecessors_in_chain(block)
        assert preds == list(range(func.first_block, block))
        assert tiny_program.predecessors_in_chain(func.first_block) == []

    def test_requests_reference_valid_functions(self, tiny_program):
        assert len(tiny_program.requests) == tiny_program.spec.n_requests
        for skeleton in tiny_program.requests:
            assert skeleton.min() >= 0
            assert skeleton.max() < tiny_program.n_functions

    def test_footprint_respected(self, tiny_program):
        span = int(tiny_program.block_addrs[-1]) - 0x400000
        assert span <= tiny_program.spec.footprint_bytes * 1.3


class TestTraceGeneration:
    def test_trace_length(self, tiny_trace):
        assert tiny_trace.n_events == 14_000

    def test_deterministic(self, tiny_spec, tiny_trace):
        again = generate_trace(tiny_spec, 0, tiny_trace.n_events, use_cache=False)
        assert np.array_equal(tiny_trace.block_ids, again.block_ids)
        assert np.array_equal(tiny_trace.taken, again.taken)

    def test_inputs_differ(self, tiny_trace, tiny_trace_alt):
        assert not np.array_equal(tiny_trace.block_ids, tiny_trace_alt.block_ids)

    def test_block_ids_valid(self, tiny_trace, tiny_program):
        assert tiny_trace.block_ids.min() >= 0
        assert tiny_trace.block_ids.max() < tiny_program.n_blocks

    def test_unconditional_always_taken(self, tiny_trace):
        uncond = ~tiny_trace.is_conditional
        assert tiny_trace.taken[uncond].all()

    def test_conditional_mix(self, tiny_trace):
        share = tiny_trace.n_conditional / tiny_trace.n_events
        assert 0.4 < share < 0.9

    def test_instruction_count_consistent(self, tiny_trace, tiny_program):
        expected = int(tiny_program.block_sizes[tiny_trace.block_ids].sum())
        assert tiny_trace.n_instructions == expected

    def test_cache_returns_same_object(self, tiny_spec):
        a = generate_trace(tiny_spec, 0, 14_000)
        b = generate_trace(tiny_spec, 0, 14_000)
        assert a is b

    def test_taken_rate_reasonable(self, tiny_trace):
        rate = tiny_trace.taken.mean()
        assert 0.5 < rate < 0.95


class TestTraceViews:
    def test_slice(self, tiny_trace):
        sub = tiny_trace.slice(100, 600)
        assert sub.n_events == 500
        assert np.array_equal(sub.block_ids, tiny_trace.block_ids[100:600])

    def test_per_branch_stats_totals(self, tiny_trace):
        stats = tiny_trace.per_branch_stats()
        assert sum(n for n, _ in stats.values()) == tiny_trace.n_conditional
        for pc, (execs, taken) in stats.items():
            assert 0 <= taken <= execs

    def test_mpki_helper(self, tiny_trace):
        assert tiny_trace.mpki(0) == 0.0
        expected = 1000.0 * 50 / tiny_trace.n_instructions
        assert tiny_trace.mpki(50) == pytest.approx(expected)

    def test_conditional_events_iteration(self, tiny_trace):
        events = list(tiny_trace.conditional_events())
        assert len(events) == tiny_trace.n_conditional
        index, pc, taken = events[0]
        assert tiny_trace.is_conditional[index]


class TestRegistry:
    def test_all_datacenter_apps_present(self):
        assert len(DATACENTER_APPS) == 12
        specs = datacenter_specs()
        assert [s.name for s in specs] == list(DATACENTER_APPS)

    def test_all_spec_apps_present(self):
        assert len(SPEC_APPS) == 10
        assert [s.name for s in spec_benchmark_specs()] == list(SPEC_APPS)

    def test_unknown_app_rejected(self):
        with pytest.raises(KeyError):
            get_spec("nginx")

    def test_mixes_are_normalised(self):
        for spec in datacenter_specs() + spec_benchmark_specs():
            assert sum(spec.behavior_mix.values()) == pytest.approx(1.0, abs=1e-6)

    def test_categories(self):
        assert get_spec("mysql").category == "datacenter"
        assert get_spec("leela").category == "spec"
        # gcc is configured data-center-flat despite being a SPEC app.
        assert get_spec("gcc").zipf_exponent < 1.0

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            AppSpec(name="x", behavior_mix={"always": 0.5})
        with pytest.raises(ValueError):
            AppSpec(name="x", category="hpc")
        with pytest.raises(ValueError):
            AppSpec(name="x", min_blocks=5, max_blocks=3)
