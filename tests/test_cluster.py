"""End-to-end cluster runs: coordinator in-process, workers as real
subprocesses of ``repro cluster worker``.

The invariants mirror the local chaos suite, plus the cluster-specific
one: a distributed run's figure text is byte-identical to a local
``--jobs N`` run's, including after worker death, dropped connections,
heartbeat stalls, and corrupt transfers.  Workers connect to a
pre-chosen free port and retry until the coordinator (run_all in this
process) binds it, so startup order never races.
"""

import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.orchestrator import faults
from repro.orchestrator.runall import run_all
from repro.orchestrator.scheduler import DONE, FAILED
from repro.orchestrator.store import ArtifactStore

EVENTS = 2_500
FIGURES = ["fig02"]
TOTAL_TASKS = 25  # 12 apps x 2 stages + the figure


@pytest.fixture(autouse=True)
def clean_fault_env(monkeypatch):
    monkeypatch.delenv(faults.FAULTS_ENV, raising=False)
    monkeypatch.delenv(faults.FAULTS_STATE_ENV, raising=False)
    faults.reset()
    yield
    faults.reset()


@pytest.fixture(scope="module")
def baseline_text(tmp_path_factory):
    """The local-run figure text every cluster run must reproduce."""
    cache = tmp_path_factory.mktemp("baseline-cache")
    os.environ.pop(faults.FAULTS_ENV, None)
    faults.reset()
    _, texts = run_all(
        figures=FIGURES, jobs=2, n_events=EVENTS,
        cache_dir=str(cache), results_dir=None,
    )
    return texts["fig02"]


def _free_port() -> int:
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


def _worker_env(extra=None):
    env = dict(os.environ)
    env.pop(faults.FAULTS_ENV, None)
    env.pop(faults.FAULTS_STATE_ENV, None)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (
            os.path.join(os.path.dirname(__file__), "..", "src"),
            env.get("PYTHONPATH", ""),
        ) if p
    )
    env.update(extra or {})
    return env


def _start_worker(port, cache_dir, worker_id, slots=2, env=None):
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "cluster", "worker",
         "--coordinator", f"127.0.0.1:{port}", "--slots", str(slots),
         "--cache-dir", str(cache_dir), "--worker-id", worker_id],
        env=env or _worker_env(),
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )


def _finish(process, timeout=60):
    """A worker's (exit code, output); kills it if it outlives the run."""
    try:
        output, _ = process.communicate(timeout=timeout)
    except subprocess.TimeoutExpired:
        process.kill()
        output, _ = process.communicate()
        return -9, output
    return process.returncode, output


def _assert_store_clean(cache_dir):
    report = ArtifactStore(cache_dir).verify(quarantine_bad=False)
    assert report["corrupt"] == [], report
    assert report["scanned"] > 0


class TestClusterRun:
    def test_matches_local_run_byte_for_byte(self, tmp_path, baseline_text):
        port = _free_port()
        worker = _start_worker(port, tmp_path / "w1", "w1", slots=2)
        try:
            manifest, texts = run_all(
                figures=FIGURES, n_events=EVENTS,
                cache_dir=str(tmp_path / "hub"), results_dir=None,
                backend="cluster", coordinator=f"127.0.0.1:{port}",
            )
        finally:
            code, output = _finish(worker)
        assert code == 0, output
        assert texts["fig02"] == baseline_text
        assert manifest.backend == "cluster"
        assert manifest.counts()[DONE] == TOTAL_TASKS
        assert manifest.counts()[FAILED] == 0
        # Placement is recorded end to end: every task names its worker,
        # and the roster carries the per-worker counters.
        assert all(t["worker_id"] == "w1" for t in manifest.tasks)
        (roster_entry,) = manifest.workers
        assert roster_entry["worker_id"] == "w1"
        assert roster_entry["tasks_done"] == TOTAL_TASKS
        assert roster_entry["bytes_in"] > 0  # artifacts were mirrored up
        _assert_store_clean(tmp_path / "hub")
        _assert_store_clean(tmp_path / "w1")

    def test_missing_coordinator_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="--coordinator"):
            run_all(
                figures=FIGURES, n_events=EVENTS,
                cache_dir=str(tmp_path / "hub"), results_dir=None,
                backend="cluster",
            )


class TestWorkerDeath:
    def test_sigkilled_worker_is_reassigned(self, tmp_path, baseline_text):
        """SIGKILL one of two workers mid-run: its leases expire, the
        tasks rerun elsewhere, and the figure text does not change."""
        port = _free_port()
        victim = _start_worker(port, tmp_path / "w1", "w1", slots=1)
        survivor = _start_worker(port, tmp_path / "w2", "w2", slots=1)

        def _kill_later():
            time.sleep(4.0)
            victim.kill()

        killer = threading.Thread(target=_kill_later)
        killer.start()
        try:
            manifest, texts = run_all(
                figures=FIGURES, n_events=EVENTS,
                cache_dir=str(tmp_path / "hub"), results_dir=None,
                backend="cluster", coordinator=f"127.0.0.1:{port}",
                lease_seconds=2.0, retries=2,
            )
        finally:
            killer.join()
            _finish(victim)
            code, output = _finish(survivor)
        assert code == 0, output
        assert manifest.counts()[FAILED] == 0
        assert manifest.counts()[DONE] == TOTAL_TASKS
        assert manifest.faults["worker_deaths"] >= 1
        assert texts["fig02"] == baseline_text
        # The survivor finished the victim's share.
        by_id = {w["worker_id"]: w for w in manifest.workers}
        assert by_id["w2"]["tasks_done"] >= 1
        assert not by_id["w1"]["alive"]
        _assert_store_clean(tmp_path / "hub")


class TestDropConnection:
    def test_dropped_connection_survives_within_lease(
        self, tmp_path, baseline_text
    ):
        """The injected drop severs the socket on assignment; the worker
        reconnects under the same id and its leases hold."""
        port = _free_port()
        env = _worker_env({
            faults.FAULTS_ENV: "drop_connection:match=trace:clang,nth=1",
        })
        worker = _start_worker(port, tmp_path / "w1", "w1", slots=2, env=env)
        try:
            manifest, texts = run_all(
                figures=FIGURES, n_events=EVENTS,
                cache_dir=str(tmp_path / "hub"), results_dir=None,
                backend="cluster", coordinator=f"127.0.0.1:{port}",
            )
        finally:
            code, output = _finish(worker)
        assert code == 0, output
        assert "dropping coordinator connection" in output
        assert manifest.counts()[FAILED] == 0
        assert manifest.counts()[DONE] == TOTAL_TASKS
        # No lease expired: reconnection happened within the window, so
        # nothing was retried and determinism held the cheap way.
        assert manifest.faults.get("worker_deaths", 0) == 0
        assert texts["fig02"] == baseline_text
        _assert_store_clean(tmp_path / "hub")


class TestHeartbeatStall:
    def test_stalled_worker_loses_leases_and_results_go_stale(
        self, tmp_path, baseline_text
    ):
        """delay_heartbeat silences the whole worker loop past its
        lease.  The coordinator must reassign, and the stalled worker's
        late results must be rejected — never double-committed."""
        port = _free_port()
        env = _worker_env({
            # The first beat lands ~lease/3 in, while the first task's
            # lease is certainly still held (slot startup alone takes
            # longer), so the stall always expires a real lease.
            faults.FAULTS_ENV: "delay_heartbeat:match=w1,nth=1,delay=6",
        })
        staller = _start_worker(port, tmp_path / "w1", "w1", slots=1, env=env)
        helper = _start_worker(port, tmp_path / "w2", "w2", slots=1)
        try:
            manifest, texts = run_all(
                figures=FIGURES, n_events=EVENTS,
                cache_dir=str(tmp_path / "hub"), results_dir=None,
                backend="cluster", coordinator=f"127.0.0.1:{port}",
                lease_seconds=2.0, retries=2,
            )
        finally:
            _finish(staller)
            code, output = _finish(helper)
        assert code == 0, output
        assert manifest.counts()[FAILED] == 0
        assert manifest.counts()[DONE] == TOTAL_TASKS
        assert manifest.faults["worker_deaths"] >= 1  # the expired lease
        assert texts["fig02"] == baseline_text
        _assert_store_clean(tmp_path / "hub")


class TestCorruptTransfer:
    def test_corrupt_upload_rejected_and_resent(self, tmp_path, baseline_text):
        """corrupt_transfer damages one blob on the wire; the receiving
        checksum gate must reject it, the retry must succeed, and no
        store may ever hold the damaged bytes."""
        port = _free_port()
        env = _worker_env({
            faults.FAULTS_ENV: "corrupt_transfer:match=trace/*,once=1",
            faults.FAULTS_STATE_ENV: str(tmp_path / "state"),
        })
        worker = _start_worker(port, tmp_path / "w1", "w1", slots=2, env=env)
        try:
            manifest, texts = run_all(
                figures=FIGURES, n_events=EVENTS,
                cache_dir=str(tmp_path / "hub"), results_dir=None,
                backend="cluster", coordinator=f"127.0.0.1:{port}",
            )
        finally:
            code, output = _finish(worker)
        assert code == 0, output
        assert manifest.counts()[FAILED] == 0
        assert manifest.counts()[DONE] == TOTAL_TASKS
        assert texts["fig02"] == baseline_text
        # Both ends committed only verified bytes.
        _assert_store_clean(tmp_path / "hub")
        _assert_store_clean(tmp_path / "w1")
