"""Formula search: Algorithm 1, randomized testing, Fisher-Yates."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.formulas import ROMBF_OPS, WHISPER_OPS, FormulaTree
from repro.core.search import (
    FormulaSearch,
    SearchResult,
    counts_to_arrays,
    decode_candidates,
    find_best_formula_scalar,
    fisher_yates_permutation,
    satisfy,
)


class TestFisherYates:
    def test_is_permutation(self):
        perm = fisher_yates_permutation(1000, seed=1)
        assert sorted(perm.tolist()) == list(range(1000))

    def test_deterministic_in_seed(self):
        assert np.array_equal(
            fisher_yates_permutation(512, seed=7), fisher_yates_permutation(512, seed=7)
        )

    def test_seed_changes_order(self):
        assert not np.array_equal(
            fisher_yates_permutation(512, seed=7), fisher_yates_permutation(512, seed=8)
        )

    def test_actually_shuffles(self):
        perm = fisher_yates_permutation(1 << 12, seed=3)
        assert not np.array_equal(perm, np.arange(1 << 12))


class TestCountsToArrays:
    def test_dense_conversion(self):
        t, nt = counts_to_arrays({3: 5, 250: 1}, {0: 2}, n_inputs=8)
        assert t[3] == 5 and t[250] == 1 and t.sum() == 6
        assert nt[0] == 2 and nt.sum() == 2

    def test_small_space(self):
        t, nt = counts_to_arrays({1: 1}, {}, n_inputs=4)
        assert len(t) == 16 and len(nt) == 16


class TestAlgorithmOne:
    """The scalar reference implements the paper's pseudocode exactly."""

    def test_satisfy_is_formula_evaluation(self):
        from repro.core.formulas import AND

        tree = FormulaTree(ops=(AND,) * 7, n_inputs=8)
        assert satisfy(0xFF, tree) == 1
        assert satisfy(0xFE, tree) == 0

    def test_picks_zero_error_formula_when_one_exists(self):
        # Outcomes follow an expressible formula's own truth table, so the
        # exhaustive search must find a zero-error candidate.
        rng = np.random.default_rng(2)
        from repro.core.formulas import random_formula

        target = random_formula(rng)
        table = target.truth_table()
        taken = {h: 1 for h in range(256) if table[h]}
        nottaken = {h: 1 for h in range(256) if not table[h]}
        search = FormulaSearch(fraction=1.0)
        result = search.find_best_formula(taken, nottaken)
        assert result.mispredictions == 0

    def test_counts_weighted_errors(self):
        # One heavy not-taken key must outweigh many light taken keys.
        taken = {0xFF: 1}
        nottaken = {0xFF: 100}
        search = FormulaSearch(fraction=1.0)
        result = search.find_best_formula(taken, nottaken)
        # The best anything can do on a contradictory key is the minority.
        assert result.mispredictions == 1

    def test_bias_wins_for_constant_branch(self):
        taken = {h: 3 for h in range(0, 256, 7)}
        nottaken = {}
        result = FormulaSearch(fraction=0.01).find_best_formula(taken, nottaken)
        # Either a tautology-equivalent formula or the bias; both perfect.
        assert result.mispredictions == 0
        if result.bias is not None:
            assert result.bias == "taken"

    def test_bias_not_taken(self):
        nottaken = {h: 3 for h in range(0, 256, 7)}
        result = FormulaSearch(fraction=0.01, seed=99).find_best_formula({}, nottaken)
        assert result.mispredictions == 0

    def test_result_predict_uses_formula(self):
        from repro.core.formulas import random_formula

        target = random_formula(np.random.default_rng(4))
        table = target.truth_table()
        taken = {h: 1 for h in range(256) if table[h]}
        nottaken = {h: 1 for h in range(256) if not table[h]}
        result = FormulaSearch(fraction=1.0).find_best_formula(taken, nottaken)
        for h in range(0, 256, 17):
            assert result.predict(h) == bool(table[h])

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_vectorised_matches_scalar_reference(self, seed):
        rng = np.random.default_rng(seed)
        taken = {int(k): int(v) for k, v in zip(rng.integers(0, 256, 20), rng.integers(1, 30, 20))}
        nottaken = {int(k): int(v) for k, v in zip(rng.integers(0, 256, 20), rng.integers(1, 30, 20))}
        search = FormulaSearch(fraction=0.002, include_bias=False, seed=11)
        vec = search.find_best_formula(taken, nottaken)
        candidates = decode_candidates(search.candidates)
        ref_formula, ref_errors = find_best_formula_scalar(taken, nottaken, candidates)
        assert vec.mispredictions == ref_errors
        # Same candidate order => identical tie-breaking.
        assert vec.formula == ref_formula

    def test_scalar_reference_empty_candidates(self):
        formula, errors = find_best_formula_scalar({1: 1}, {}, [])
        assert formula is None and errors == 0


class TestRandomizedTesting:
    def test_fraction_bounds_candidates(self):
        search = FormulaSearch(fraction=0.001)
        assert len(search.candidates) == round(0.001 * (1 << 15))

    def test_full_fraction_covers_space(self):
        search = FormulaSearch(fraction=1.0)
        assert len(search.candidates) == 1 << 15

    def test_candidates_shared_prefix(self):
        # The same permutation is reused for every branch: a smaller
        # fraction is a prefix of a larger one (paper §III-B).
        small = FormulaSearch(fraction=0.001, seed=5)
        large = FormulaSearch(fraction=0.01, seed=5)
        assert np.array_equal(large.candidates[: len(small.candidates)], small.candidates)

    def test_more_exploration_never_hurts(self):
        rng = np.random.default_rng(0)
        taken = {int(k): 2 for k in rng.integers(0, 256, 25)}
        nottaken = {int(k): 2 for k in rng.integers(0, 256, 25)}
        errors = []
        for fraction in (0.001, 0.01, 0.1, 1.0):
            result = FormulaSearch(fraction=fraction, seed=5).find_best_formula(
                taken, nottaken
            )
            errors.append(result.mispredictions)
        assert errors == sorted(errors, reverse=True) or all(
            a >= b for a, b in zip(errors, errors[1:])
        )

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            FormulaSearch(fraction=0.0)
        with pytest.raises(ValueError):
            FormulaSearch(fraction=1.5)


class TestRombfSearchSpace:
    def test_rombf_search(self):
        # AND/OR-only, no invert: space is 2**(n-1).
        search = FormulaSearch(
            n_inputs=4, ops_allowed=ROMBF_OPS, with_invert=False, fraction=1.0
        )
        assert search.space_size == 8
        taken = {0b1111: 10}
        nottaken = {0b0000: 10, 0b0101: 3}
        result = search.find_best_formula(taken, nottaken)
        assert result.mispredictions == 0


class TestSearchResult:
    def test_bias_predict(self):
        result = SearchResult(formula=None, mispredictions=0, bias="taken")
        assert result.predict(0) is True
        result = SearchResult(formula=None, mispredictions=0, bias="not-taken")
        assert result.predict(255) is False

    def test_empty_result_cannot_predict(self):
        with pytest.raises(ValueError):
            SearchResult(formula=None, mispredictions=0).predict(0)
