"""Workload structural health metrics."""

import numpy as np
import pytest

from repro.workloads.validation import (
    RecurrenceReport,
    check_workload,
    context_recurrence,
    follower_depth_distribution,
    history_entropy,
    misprediction_flatness,
)


class TestEntropy:
    def test_bounds(self, tiny_trace):
        entropy = history_entropy(tiny_trace, window=12)
        assert 0.0 <= entropy <= 12.0

    def test_datacenter_history_is_low_entropy(self, tiny_trace):
        # The core calibration property: far below the uniform bound.
        entropy = history_entropy(tiny_trace, window=16)
        assert entropy < 12.0

    def test_constant_stream_zero_entropy(self, tiny_trace):
        import copy

        trace = tiny_trace.slice(0, 2000)
        trace.taken = np.ones_like(trace.taken)
        assert history_entropy(trace, window=8) == pytest.approx(0.0)

    def test_window_validation(self, tiny_trace):
        with pytest.raises(ValueError):
            history_entropy(tiny_trace, window=0)
        with pytest.raises(ValueError):
            history_entropy(tiny_trace, window=63)


class TestRecurrence:
    def test_report_fields(self, tiny_trace):
        report = context_recurrence(tiny_trace, min_executions=10)
        assert isinstance(report, RecurrenceReport)
        if report.n_branches:
            assert 0.0 <= report.median_recurring_fraction <= 1.0
            assert report.median_distinct_contexts <= report.median_executions

    def test_empty_band(self, tiny_trace):
        report = context_recurrence(tiny_trace, min_depth=2000, max_depth=3000)
        assert report.n_branches == 0


class TestDistributions:
    def test_depth_distribution_sums_to_100(self, tiny_trace):
        dist = follower_depth_distribution(tiny_trace)
        assert sum(dist.values()) == pytest.approx(100.0)

    def test_flatness_metric(self, tiny_baseline):
        share = misprediction_flatness(tiny_baseline)
        assert 0 < share <= 100.0


class TestHealthCheck:
    def test_check_workload(self, tiny_trace, tiny_baseline):
        health = check_workload(tiny_trace, tiny_baseline)
        assert 0.0 <= health.entropy_utilisation <= 1.0
        assert health.top50_share is not None

    def test_check_without_result(self, tiny_trace):
        health = check_workload(tiny_trace)
        assert health.top50_share is None
