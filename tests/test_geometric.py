"""Geometric history-length series (paper §III-A, Table III)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.geometric import geometric_lengths, length_index


class TestPaperSeries:
    def test_default_series_endpoints(self):
        lengths = geometric_lengths()
        assert lengths[0] == 8
        assert lengths[-1] == 1024

    def test_default_series_has_16_terms(self):
        assert len(geometric_lengths()) == 16

    def test_default_series_prefix_matches_paper(self):
        # The paper quotes "8, 11, 15, ..., 1024" (§IV).
        assert geometric_lengths()[:3] == [8, 11, 15]

    def test_default_series_strictly_increasing(self):
        lengths = geometric_lengths()
        assert all(b > a for a, b in zip(lengths, lengths[1:]))

    def test_fits_4bit_history_field(self):
        assert len(geometric_lengths()) <= 16


class TestGeneralSeries:
    @given(
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=2, max_value=40),
    )
    def test_endpoints_exact_for_any_params(self, minimum, count):
        maximum = minimum * 50
        lengths = geometric_lengths(minimum, maximum, count)
        assert lengths[0] == minimum
        assert lengths[-1] == maximum
        assert len(lengths) == count

    @given(
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=2, max_value=40),
    )
    def test_strictly_increasing_for_any_params(self, minimum, count):
        lengths = geometric_lengths(minimum, minimum * 50, count)
        assert all(b > a for a, b in zip(lengths, lengths[1:]))

    def test_rounding_collisions_bump_upward(self):
        # A dense series in a narrow range forces rounding collisions.
        lengths = geometric_lengths(4, 14, 10)
        assert len(set(lengths)) == 10
        assert lengths[0] == 4 and lengths[-1] == 14

    def test_infeasible_count_rejected(self):
        with pytest.raises(ValueError):
            geometric_lengths(4, 12, 10)  # only 9 distinct ints available

    def test_rejects_single_term(self):
        with pytest.raises(ValueError):
            geometric_lengths(8, 1024, 1)

    def test_rejects_nonpositive_minimum(self):
        with pytest.raises(ValueError):
            geometric_lengths(0, 1024, 16)

    def test_rejects_inverted_range(self):
        with pytest.raises(ValueError):
            geometric_lengths(100, 50, 4)


class TestLengthIndex:
    def test_roundtrip_every_entry(self):
        lengths = geometric_lengths()
        for i, length in enumerate(lengths):
            assert length_index(length, lengths) == i

    def test_unknown_length_raises(self):
        with pytest.raises(ValueError):
            length_index(9, geometric_lengths())
