"""``repro run-all``: graph assembly and cold/warm determinism.

The determinism test is the orchestrator's core guarantee: a run served
entirely from the artifact cache must reproduce the uncached figure
rows byte-for-byte.
"""

import pytest

from repro.experiments import FIGURES
from repro.orchestrator import runall
from repro.orchestrator.manifest import MANIFEST_NAME, RunManifest
from repro.orchestrator.runall import FIGURE_NEEDS, STAGE_DEPS, build_graph, run_all
from repro.workloads.registry import DATACENTER_APPS

EVENTS = 2_500


class TestGraphAssembly:
    def test_needs_map_covers_every_figure(self):
        assert set(FIGURE_NEEDS) == set(FIGURES)

    def test_stage_deps_closed_over_known_stages(self):
        for stage, deps in STAGE_DEPS.items():
            for dep in deps:
                assert dep in STAGE_DEPS, f"{stage} depends on unknown {dep}"
        for needs in FIGURE_NEEDS.values():
            for stage in needs:
                assert stage in STAGE_DEPS

    def test_no_cache_means_no_warm_tasks(self):
        graph = build_graph(["fig02"], EVENTS, cache_dir=None, results_dir=None)
        assert len(graph) == 1
        assert "figure:fig02" in graph

    def test_warm_tasks_and_figure_deps(self):
        graph = build_graph(["fig02"], EVENTS, cache_dir="/tmp/c", results_dir=None)
        # fig02 needs baseline, which transitively needs trace.
        for app in DATACENTER_APPS:
            assert f"trace:{app}" in graph
            assert f"baseline:{app}" in graph
        assert "figure:fig02" in graph
        assert len(graph) == 2 * len(DATACENTER_APPS) + 1

    def test_transitive_stage_closure(self):
        graph = build_graph(["fig12"], EVENTS, cache_dir="/tmp/c", results_dir=None)
        # timing_full pulls in the whole pipeline, including mtage and
        # its trace prerequisite.
        app = DATACENTER_APPS[0]
        for stage in ("trace", "profile", "whisper", "whisper_run",
                      "rombf", "branchnet", "mtage", "timing_full"):
            assert f"{stage}:{app}" in graph

    def test_unknown_figure_rejected(self):
        with pytest.raises(ValueError, match="unknown figures"):
            run_all(figures=["fig99"], n_events=EVENTS, cache_dir=None)


class TestColdWarmDeterminism:
    @pytest.fixture(scope="class")
    def runs(self, tmp_path_factory):
        cache = tmp_path_factory.mktemp("cache")
        results = tmp_path_factory.mktemp("results")
        cold = run_all(
            figures=["fig02"], jobs=1, n_events=EVENTS,
            cache_dir=str(cache), results_dir=str(results),
        )
        warm = run_all(
            figures=["fig02"], jobs=1, n_events=EVENTS,
            cache_dir=str(cache), results_dir=str(results),
        )
        return cold, warm, results

    def test_cold_run_completes_and_writes_outputs(self, runs):
        (manifest, texts), _, results = runs
        assert manifest.counts().get("failed", 0) == 0
        assert "fig02" in texts
        saved = (results / "fig02_mpki.txt").read_text()
        assert saved == texts["fig02"]
        assert f"(scale: {runall.scale_label(EVENTS)})" in saved

    def test_warm_run_is_all_hits(self, runs):
        (_, _), (manifest, _), _ = runs
        assert manifest.cache["misses"] == 0
        assert manifest.cache["puts"] == 0
        assert manifest.cache["hits"] > 0

    def test_warm_reproduces_cold_rows_exactly(self, runs):
        (_, cold_texts), (_, warm_texts), _ = runs
        assert warm_texts["fig02"] == cold_texts["fig02"]

    def test_manifest_persisted_and_loadable(self, runs):
        _, (manifest, _), results = runs
        loaded = RunManifest.load(results / MANIFEST_NAME)
        assert loaded.figures == ["fig02"]
        assert loaded.n_events == EVENTS
        assert loaded.counts() == manifest.counts()

    def test_report_includes_manifest_section(self, runs):
        from repro.analysis.report import build_experiments_md

        _, _, results = runs
        text = build_experiments_md(results)
        assert "## Run manifest" in text
        assert "hit rate" in text
