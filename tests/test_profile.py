"""Branch profiles: collection, merging, scaling helpers."""

import pytest

from repro.bpu.scaling import CAPACITY_SCALE, scaled_tage_sc_l, simulated_kb
from repro.profiling.profile import BranchProfile


class TestProfileCollection:
    def test_per_pc_totals(self, tiny_trace, tiny_profile):
        assert tiny_profile.total_executions == tiny_trace.n_conditional
        assert tiny_profile.total_mispredictions > 0
        assert tiny_profile.app == tiny_trace.app

    def test_matches_direct_simulation(self, tiny_trace, tiny_baseline, tiny_profile):
        raw = tiny_baseline.with_warmup(0.0)
        assert tiny_profile.total_mispredictions == raw.mispredictions

    def test_requires_traces(self):
        with pytest.raises(ValueError):
            BranchProfile.collect([], lambda: scaled_tage_sc_l(64))

    def test_merge_accumulates(self, tiny_trace, tiny_trace_alt):
        a = BranchProfile.collect([tiny_trace], lambda: scaled_tage_sc_l(64))
        b = BranchProfile.collect([tiny_trace_alt], lambda: scaled_tage_sc_l(64))
        merged = BranchProfile.merge([a, b])
        assert merged.total_executions == a.total_executions + b.total_executions
        assert len(merged.traces) == 2

    def test_merge_empty_rejected(self):
        with pytest.raises(ValueError):
            BranchProfile.merge([])

    def test_multi_trace_collection(self, tiny_trace, tiny_trace_alt):
        profile = BranchProfile.collect(
            [tiny_trace, tiny_trace_alt], lambda: scaled_tage_sc_l(64)
        )
        assert profile.total_executions == (
            tiny_trace.n_conditional + tiny_trace_alt.n_conditional
        )


class TestCapacityScaling:
    def test_scale_factor(self):
        assert simulated_kb(64) == 64 / CAPACITY_SCALE

    def test_floor(self):
        assert simulated_kb(1) == 0.5

    def test_label_carried_on_predictor(self):
        predictor = scaled_tage_sc_l(128)
        assert predictor.label_kb == 128
        assert "128kb" in predictor.name

    def test_bigger_label_bigger_tables(self):
        small = scaled_tage_sc_l(8)
        large = scaled_tage_sc_l(1024)
        assert large.tage.log_entries > small.tage.log_entries

    def test_bimodal_base_not_scaled(self):
        # The bimodal base stays real-sized; only tagged tables scale.
        small = scaled_tage_sc_l(8)
        large = scaled_tage_sc_l(1024)
        assert small.tage.log_bimodal == large.tage.log_bimodal == 15
