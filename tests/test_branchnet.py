"""BranchNet baseline: CNN learning, budgets, runtime integration."""

import numpy as np
import pytest

from repro.branchnet.cnn import BranchNetModel, CnnConfig, tokenize
from repro.branchnet.runtime import BranchNetRuntime
from repro.branchnet.trainer import (
    BUDGET_8KB,
    BUDGET_32KB,
    BranchNetOptimizer,
    collect_token_samples,
)
from repro.bpu.runner import simulate
from repro.bpu.scaling import scaled_tage_sc_l
from repro.core.training import select_candidates
from repro.experiments.runner import deploy_budget


def _correlated_dataset(n=700, history=48, seed=0):
    """Windows where a special branch's direction decides the label."""
    rng = np.random.default_rng(seed)
    pcs = rng.integers(0, 40, (n, history)) * 64 + 0x1000
    dirs = rng.integers(0, 2, (n, history))
    pos = rng.integers(4, history - 2, n)
    labels = rng.integers(0, 2, n).astype(bool)
    for i in range(n):
        pcs[i, pos[i]] = 0x7000
        dirs[i, pos[i]] = labels[i]
    tokens = np.stack([tokenize(pcs[i], dirs[i]) for i in range(n)])
    return tokens, labels


class TestTokenizer:
    def test_direction_distinguishes_tokens(self):
        pcs = np.array([0x4000, 0x4000])
        toks = tokenize(pcs, np.array([0, 1]))
        assert toks[0] != toks[1]
        assert abs(toks[0] - toks[1]) == 1

    def test_range(self):
        rng = np.random.default_rng(0)
        toks = tokenize(rng.integers(0, 2**40, 1000), rng.integers(0, 2, 1000))
        assert toks.min() >= 0 and toks.max() < 256

    def test_spreads_pcs(self):
        pcs = np.arange(100) * 64 + 0x1000
        toks = tokenize(pcs, np.zeros(100, dtype=int))
        assert len(np.unique(toks)) > 60  # low collision rate


class TestCnn:
    def test_learns_position_invariant_correlation(self):
        tokens, labels = _correlated_dataset()
        model = BranchNetModel(CnnConfig())
        train_acc = model.train(tokens[:550], labels[:550])
        val = (model.predict_batch(tokens[550:]) >= 0.5) == labels[550:]
        assert train_acc > 0.9
        assert val.mean() > 0.9

    def test_cannot_learn_pure_noise(self):
        rng = np.random.default_rng(1)
        tokens = rng.integers(0, 256, (400, 48))
        labels = rng.integers(0, 2, 400).astype(bool)
        model = BranchNetModel(CnnConfig(epochs=10))
        model.train(tokens[:300], labels[:300])
        val = (model.predict_batch(tokens[300:]) >= 0.5) == labels[300:]
        assert val.mean() < 0.65

    def test_storage_is_kb_scale(self):
        model = BranchNetModel(CnnConfig())
        assert 1000 < model.storage_bytes < 8192  # "couple of KB per branch"

    def test_predict_single(self):
        tokens, labels = _correlated_dataset(n=300)
        model = BranchNetModel(CnnConfig(epochs=10))
        model.train(tokens, labels)
        assert isinstance(model.predict(tokens[0]), bool)

    def test_empty_training_is_safe(self):
        model = BranchNetModel(CnnConfig())
        assert model.train(np.zeros((0, 48), dtype=int), np.zeros(0, dtype=bool)) == 0.0


class TestSampleCollection:
    def test_window_labels_match_trace(self, tiny_trace, tiny_profile):
        candidates = select_candidates(tiny_profile.per_pc)[:4]
        samples = collect_token_samples(tiny_profile, candidates, history=32, vocab=256)
        stats = tiny_trace.per_branch_stats()
        for pc in candidates:
            windows, labels = samples[pc]
            assert windows.shape[1] == 32
            # Labels reflect the branch's taken-rate (within warm-up slack).
            assert len(labels) <= stats[pc][0]

    def test_sample_cap(self, tiny_profile):
        candidates = select_candidates(tiny_profile.per_pc)[:2]
        samples = collect_token_samples(
            tiny_profile, candidates, history=32, vocab=256, max_samples_per_branch=5
        )
        for pc in candidates:
            assert len(samples[pc][1]) <= 5


class TestOptimizer:
    def test_training_respects_max_models(self, tiny_profile):
        result = BranchNetOptimizer(budget_bytes=None, max_models=6).train(tiny_profile)
        assert result.trained <= 6
        assert result.training_seconds > 0

    def test_budget_deployment_is_prefix(self, tiny_profile):
        result = BranchNetOptimizer(budget_bytes=None, max_models=8).train(tiny_profile)
        if not result.models:
            pytest.skip("no CNN cleared validation on the tiny workload")
        small = deploy_budget(result, BUDGET_8KB)
        large = deploy_budget(result, BUDGET_32KB)
        assert set(small) <= set(large) <= set(result.models)
        assert sum(m.storage_bytes for m in small.values()) <= BUDGET_8KB

    def test_runtime_integration(self, tiny_trace, tiny_profile):
        result = BranchNetOptimizer(budget_bytes=None, max_models=8).train(tiny_profile)
        runtime = BranchNetRuntime(result.models)
        run = simulate(tiny_trace, scaled_tage_sc_l(64), runtime=runtime)
        # With no models this degenerates to the baseline; either way the
        # run completes and flags exactly the covered branches.
        covered = set(result.models)
        import numpy as np

        hinted_pcs = set(
            int(p)
            for p in tiny_trace.pcs[run.cond_event_indices[run.hinted]]
        )
        assert hinted_pcs <= covered

    def test_empty_runtime_defers_everything(self, tiny_trace):
        runtime = BranchNetRuntime({})
        run = simulate(tiny_trace, scaled_tage_sc_l(64), runtime=runtime)
        assert run.hinted.sum() == 0
