"""Hint buffer and Whisper runtime (paper §IV run-time hint usage)."""

from repro.bpu.runner import RunContext
from repro.core.formulas import AND, OR, FormulaTree
from repro.core.hint_buffer import HintBuffer, TableHintRuntime, WhisperRuntime
from repro.core.hints import BIAS_NONE, BIAS_TAKEN, BrHint


def _formula_hint(length_index=0, invert=False):
    tree = FormulaTree(ops=(OR,) * 7, invert=invert, n_inputs=8)
    return BrHint(
        history_index=length_index,
        formula_bits=tree.encode(),
        bias=BIAS_NONE,
        pc_offset=0,
    )


class TestHintBuffer:
    def test_load_and_lookup(self):
        buffer = HintBuffer(4)
        buffer.load(0x100, _formula_hint())
        assert buffer.lookup(0x100) is not None
        assert buffer.lookup(0x200) is None

    def test_lru_eviction(self):
        buffer = HintBuffer(2)
        buffer.load(1, _formula_hint())
        buffer.load(2, _formula_hint())
        buffer.load(3, _formula_hint())  # evicts pc=1
        assert buffer.lookup(1) is None
        assert buffer.lookup(2) is not None
        assert buffer.lookup(3) is not None
        assert buffer.evictions == 1

    def test_lookup_refreshes_lru(self):
        buffer = HintBuffer(2)
        buffer.load(1, _formula_hint())
        buffer.load(2, _formula_hint())
        buffer.lookup(1)  # refresh pc=1
        buffer.load(3, _formula_hint())  # should evict pc=2
        assert buffer.lookup(1) is not None
        assert buffer.lookup(2) is None

    def test_reload_moves_to_end_without_duplicate(self):
        buffer = HintBuffer(2)
        buffer.load(1, _formula_hint())
        buffer.load(1, _formula_hint())
        assert len(buffer) == 1

    def test_unlimited_capacity(self):
        buffer = HintBuffer(None)
        for pc in range(100):
            buffer.load(pc, _formula_hint())
        assert len(buffer) == 100
        assert buffer.evictions == 0

    def test_clear_resets_stats(self):
        buffer = HintBuffer(4)
        buffer.load(1, _formula_hint())
        buffer.lookup(1)
        buffer.clear()
        assert len(buffer) == 0
        assert buffer.loads == 0 and buffer.hits == 0


class TestWhisperRuntime:
    def test_hints_only_active_after_block_executes(self):
        hint = _formula_hint()
        runtime = WhisperRuntime({7: [(0x400, hint)]}, buffer_entries=8)
        ctx = RunContext()
        assert runtime.predict(0x400, ctx) is None  # not loaded yet
        runtime.on_block(7)
        assert runtime.predict(0x400, ctx) is not None

    def test_formula_prediction_uses_live_history(self):
        # OR over 8 bits with length index 0 (length 8): any recent taken
        # branch makes the prediction True.
        hint = _formula_hint()
        runtime = WhisperRuntime({1: [(0x400, hint)]})
        runtime.on_block(1)
        ctx = RunContext()
        assert runtime.predict(0x400, ctx) is False  # empty history
        ctx.push(0x100, True)
        assert runtime.predict(0x400, ctx) is True

    def test_bias_hint(self):
        hint = BrHint(0, 0, BIAS_TAKEN, 0)
        runtime = WhisperRuntime({1: [(0x100, hint)]})
        runtime.on_block(1)
        assert runtime.predict(0x100, RunContext()) is True

    def test_reset_clears_buffer(self):
        runtime = WhisperRuntime({1: [(0x100, _formula_hint())]})
        runtime.on_block(1)
        runtime.reset()
        assert runtime.predict(0x100, RunContext()) is None

    def test_buffer_pressure_drops_oldest_hints(self):
        placements = {i: [(0x1000 + i, _formula_hint())] for i in range(4)}
        runtime = WhisperRuntime(placements, buffer_entries=2)
        for block in range(4):
            runtime.on_block(block)
        ctx = RunContext()
        assert runtime.predict(0x1000, ctx) is None
        assert runtime.predict(0x1003, ctx) is not None


class TestTableHintRuntime:
    def test_table_lookup(self):
        table = {0x10: lambda history: bool(history & 1)}
        runtime = TableHintRuntime(table)
        ctx = RunContext()
        assert runtime.predict(0x99, ctx) is None
        ctx.push(0x5, True)
        assert runtime.predict(0x10, ctx) is True
        ctx.push(0x5, False)
        assert runtime.predict(0x10, ctx) is False
