"""Link-time hint injection: predecessor choice, offsets, overheads."""

import pytest

from repro.core.hints import PC_BITS, BrHint
from repro.core.injection import HintPlacement, inject_hints
from repro.workloads.program import INSTRUCTION_BYTES


class TestPlacementProperties:
    def test_hosts_precede_branches(self, tiny_program, tiny_whisper):
        _, _, placement, _ = tiny_whisper
        for pc, host in placement.host_of_branch.items():
            branch_block = tiny_program.block_of_pc(pc)
            host_func = int(tiny_program.func_of_block[host])
            branch_func = int(tiny_program.func_of_block[branch_block])
            if host_func == branch_func:
                assert host < branch_block

    def test_offsets_fit_pc_pointer(self, tiny_program, tiny_whisper):
        _, _, placement, _ = tiny_whisper
        for block, hints in placement.placements.items():
            base = int(tiny_program.block_addrs[block])
            for pc, hint in hints:
                offset = (pc - base) // INSTRUCTION_BYTES
                assert 0 <= offset < (1 << PC_BITS)
                assert hint.pc_offset == offset

    def test_every_placed_hint_has_host(self, tiny_whisper):
        _, trained, placement, _ = tiny_whisper
        placed = {pc for hints in placement.placements.values() for pc, _ in hints}
        assert placed == set(placement.host_of_branch)
        assert placed <= set(trained.hints)

    def test_placed_plus_dropped_covers_trained(self, tiny_whisper):
        _, trained, placement, _ = tiny_whisper
        assert placement.n_hints + len(placement.dropped) == trained.n_hints

    def test_drop_reasons_are_known(self, tiny_whisper):
        _, _, placement, _ = tiny_whisper
        known = {"unknown-branch", "no-predecessor", "weak-correlation", "offset-overflow"}
        assert set(placement.dropped.values()) <= known


class TestOverheadAccounting:
    def test_static_overhead(self, tiny_program, tiny_whisper):
        _, _, placement, _ = tiny_whisper
        expected = placement.n_hints / tiny_program.static_instructions
        assert placement.static_overhead(tiny_program) == pytest.approx(expected)

    def test_dynamic_overhead_counts_host_executions(self, tiny_trace, tiny_whisper):
        _, _, placement, _ = tiny_whisper
        import numpy as np

        counts = np.bincount(
            tiny_trace.block_ids, minlength=tiny_trace.program.n_blocks
        )
        expected = sum(
            len(hints) * int(counts[block])
            for block, hints in placement.placements.items()
        )
        assert placement.dynamic_instructions_added(tiny_trace) == expected
        assert placement.dynamic_overhead(tiny_trace) == pytest.approx(
            expected / tiny_trace.n_instructions
        )

    def test_empty_placement_zero_overhead(self, tiny_program, tiny_trace):
        placement = HintPlacement()
        assert placement.static_overhead(tiny_program) == 0.0
        assert placement.dynamic_overhead(tiny_trace) == 0.0


class TestInjectHints:
    def test_unknown_pc_dropped(self, tiny_program, tiny_trace):
        hint = BrHint(0, 0, 1, 0)
        placement = inject_hints(tiny_program, {0x2: hint}, trace=tiny_trace)
        assert placement.dropped == {0x2: "unknown-branch"}

    def test_ready_brhint_gets_offset_rewritten(self, tiny_program, tiny_trace):
        func = tiny_program.functions[0]
        block = func.first_block + 2
        if not tiny_program.is_conditional[block]:
            block += 1
        pc = int(tiny_program.branch_pcs[block])
        hint = BrHint(3, 17, 0, 0)
        placement = inject_hints(tiny_program, {pc: hint}, trace=tiny_trace)
        if pc in placement.host_of_branch:
            host = placement.host_of_branch[pc]
            placed = dict(placement.placements[host])[pc]
            assert placed.history_index == 3
            assert placed.formula_bits == 17
            assert placed.pc_offset > 0

    def test_lead_parameter_moves_host_earlier(self, tiny_program, tiny_trace, tiny_whisper):
        _, trained, _, _ = tiny_whisper
        near = inject_hints(tiny_program, trained.hints, trace=tiny_trace, lead=1)
        far = inject_hints(tiny_program, trained.hints, trace=tiny_trace, lead=4)
        common = set(near.host_of_branch) & set(far.host_of_branch)
        assert common
        assert all(far.host_of_branch[pc] <= near.host_of_branch[pc] for pc in common)

    def test_chain_head_uses_trace_correlation_or_drops(self, tiny_program, tiny_trace):
        heads = [
            func.first_block
            for func in tiny_program.functions
            if tiny_program.is_conditional[func.first_block]
        ]
        assert heads, "fixture should have conditional chain heads"
        pc = int(tiny_program.branch_pcs[heads[0]])
        hint = BrHint(0, 0, 1, 0)
        placement = inject_hints(tiny_program, {pc: hint}, trace=tiny_trace)
        assert (pc in placement.host_of_branch) or (pc in placement.dropped)
