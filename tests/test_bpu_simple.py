"""Simple predictors and the folded-history register."""

import numpy as np
import pytest

from repro.bpu.base import FoldedHistory
from repro.bpu.simple import (
    BimodalPredictor,
    GSharePredictor,
    IdealPredictor,
    StaticTakenPredictor,
)


def drive(predictor, stream):
    wrong = 0
    for pc, taken in stream:
        if predictor.predict(pc) != taken:
            wrong += 1
        predictor.update(pc, taken)
    return 1.0 - wrong / len(stream)


class TestBimodal:
    def test_learns_biased_branch(self):
        stream = [(0x100, True)] * 1000
        assert drive(BimodalPredictor(), stream) > 0.99

    def test_learns_never_taken(self):
        stream = [(0x100, False)] * 1000
        assert drive(BimodalPredictor(), stream) > 0.99

    def test_hysteresis_tolerates_single_flip(self):
        predictor = BimodalPredictor()
        for _ in range(10):
            predictor.update(0x100, True)
        predictor.update(0x100, False)  # one excursion
        assert predictor.predict(0x100) is True

    def test_separate_counters_per_pc(self):
        predictor = BimodalPredictor()
        for _ in range(4):
            predictor.update(0x100, True)
            predictor.update(0x200, False)
        assert predictor.predict(0x100) is True
        assert predictor.predict(0x200) is False

    def test_reset(self):
        predictor = BimodalPredictor()
        for _ in range(4):
            predictor.update(0x100, False)
        predictor.reset()
        assert predictor.predict(0x100) is True  # power-on weakly taken

    def test_storage(self):
        assert BimodalPredictor(log_entries=14).storage_bits == 2 * (1 << 14)


class TestGShare:
    def test_learns_history_pattern_bimodal_cannot(self):
        # Strict alternation: global history determines the outcome.
        stream = [(0x100, bool(i % 2)) for i in range(4000)]
        assert drive(GSharePredictor(), stream) > 0.95
        assert drive(BimodalPredictor(), stream) < 0.6

    def test_rejects_history_longer_than_index(self):
        with pytest.raises(ValueError):
            GSharePredictor(log_entries=10, history_length=12)

    def test_reset_clears_history(self):
        predictor = GSharePredictor()
        for i in range(100):
            predictor.update(0x100, bool(i % 2))
        predictor.reset()
        assert predictor._ghr == 0


class TestIdealAndStatic:
    def test_static_taken(self):
        predictor = StaticTakenPredictor(True)
        assert predictor.predict(0x1) is True
        predictor.update(0x1, False)
        assert predictor.predict(0x1) is True

    def test_ideal_flag(self):
        assert getattr(IdealPredictor(), "is_ideal", False) is True


class TestFoldedHistory:
    def test_position_independent(self):
        rng = np.random.default_rng(1)
        suffix = [1, 0, 1, 1, 0, 1, 0, 0]

        def run(prefix):
            fold = FoldedHistory(8, 5)
            hist = []
            for bit in prefix + suffix:
                old = hist[-8] if len(hist) >= 8 else 0
                fold.update(bit, old)
                hist.append(bit)
            return fold.comp

        a = run([int(x) for x in rng.integers(0, 2, 37)])
        b = run([int(x) for x in rng.integers(0, 2, 64)])
        assert a == b

    def test_different_windows_differ_somewhere(self):
        fold1 = FoldedHistory(8, 5)
        fold2 = FoldedHistory(8, 5)
        hist1, hist2 = [], []
        diffs = 0
        rng = np.random.default_rng(2)
        for _ in range(200):
            b1, b2 = int(rng.integers(0, 2)), int(rng.integers(0, 2))
            fold1.update(b1, hist1[-8] if len(hist1) >= 8 else 0)
            fold2.update(b2, hist2[-8] if len(hist2) >= 8 else 0)
            hist1.append(b1)
            hist2.append(b2)
            if hist1[-8:] != hist2[-8:]:
                diffs += fold1.comp != fold2.comp
        assert diffs > 50  # folds separate most distinct windows

    def test_stays_within_width(self):
        fold = FoldedHistory(100, 7)
        rng = np.random.default_rng(3)
        hist = []
        for _ in range(500):
            bit = int(rng.integers(0, 2))
            fold.update(bit, hist[-100] if len(hist) >= 100 else 0)
            hist.append(bit)
            assert 0 <= fold.comp < (1 << 7)

    def test_reset(self):
        fold = FoldedHistory(8, 5)
        fold.update(1, 0)
        fold.reset()
        assert fold.comp == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            FoldedHistory(0, 5)
        with pytest.raises(ValueError):
            FoldedHistory(8, 0)
