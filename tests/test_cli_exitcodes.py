"""Subprocess tests pinning the CLI's exit-code contract.

Scripts and CI wrap ``repro``; they key off exit codes, not prose, so
the codes are part of the interface: 130 for an interrupted (resumable)
``run-all``, non-zero from ``cache verify --no-quarantine`` when the
scan finds damage, 0 when verification repairs by quarantining.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.cluster.shipping import commit_sealed_blob
from repro.orchestrator import faults
from repro.orchestrator.store import ArtifactStore, seal_payload


def _env():
    env = dict(os.environ)
    env.pop(faults.FAULTS_ENV, None)
    env.pop(faults.FAULTS_STATE_ENV, None)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (
            os.path.join(os.path.dirname(__file__), "..", "src"),
            env.get("PYTHONPATH", ""),
        ) if p
    )
    return env


def _repro(*argv, env=None, timeout=120):
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv],
        env=env or _env(),
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        timeout=timeout,
    )


class TestInterruptExitCode:
    def test_sigint_during_run_all_exits_130(self, tmp_path):
        env = _env()
        # Hold one task open so the signal lands mid-run on any machine.
        env[faults.FAULTS_ENV] = "hang_task:match=baseline:postgres,delay=8"
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "run-all",
             "--figures", "fig02", "--jobs", "2", "--events", "2000",
             "--cache-dir", str(tmp_path / "cache"),
             "--results", str(tmp_path / "results")],
            env=env,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        time.sleep(3.0)
        process.send_signal(signal.SIGINT)
        output, _ = process.communicate(timeout=120)
        assert process.returncode == 130, output
        assert "resume" in output


class TestCacheVerifyExitCode:
    def _store_with_artifacts(self, tmp_path, count=3):
        store = ArtifactStore(tmp_path / "cache")
        for i in range(count):
            commit_sealed_blob(
                store, "trace", f"key{i}", seal_payload(b"payload-%d" % i)
            )
        return store

    def test_clean_store_verifies_zero(self, tmp_path):
        self._store_with_artifacts(tmp_path)
        result = _repro(
            "cache", "verify", "--no-quarantine",
            "--cache-dir", str(tmp_path / "cache"),
        )
        assert result.returncode == 0, result.stdout
        assert "0 corrupt" in result.stdout

    @pytest.mark.parametrize("damage", ["truncate", "bitflip"])
    def test_damaged_artifact_fails_verify(self, tmp_path, damage):
        store = self._store_with_artifacts(tmp_path)
        path = store._path("trace", "key1")
        blob = path.read_bytes()
        if damage == "truncate":
            path.write_bytes(blob[: len(blob) // 2])
        else:
            flipped = bytearray(blob)
            flipped[5] ^= 0xFF
            path.write_bytes(bytes(flipped))
        result = _repro(
            "cache", "verify", "--no-quarantine",
            "--cache-dir", str(tmp_path / "cache"),
        )
        assert result.returncode != 0, result.stdout
        assert "CORRUPT" in result.stdout
        assert path.exists()  # --no-quarantine reports, never moves

    def test_quarantining_verify_repairs_and_exits_zero(self, tmp_path):
        store = self._store_with_artifacts(tmp_path)
        path = store._path("trace", "key2")
        path.write_bytes(b"rotten")
        result = _repro(
            "cache", "verify", "--cache-dir", str(tmp_path / "cache")
        )
        # Quarantine mode *handled* the damage: exit 0, file moved out
        # of the committed namespace, and a re-scan comes back clean.
        assert result.returncode == 0, result.stdout
        assert "quarantined" in result.stdout
        assert not path.exists()
        rescan = _repro(
            "cache", "verify", "--no-quarantine",
            "--cache-dir", str(tmp_path / "cache"),
        )
        assert rescan.returncode == 0
        assert "0 corrupt" in rescan.stdout


class TestConnectionRefusedExitCodes:
    """Typed connection errors exit 1; malformed addresses exit 2 —
    consistently across the cluster worker and the serve commands."""

    REFUSED = "127.0.0.1:1"  # reserved port: connect() is refused fast

    def test_serve_status_refused_exits_1(self):
        result = _repro("serve", "status", "--connect", self.REFUSED)
        assert result.returncode == 1, result.stdout
        assert "unreachable" in result.stdout
        assert "Traceback" not in result.stdout

    def test_serve_drive_refused_exits_1(self):
        result = _repro(
            "serve", "drive", "--connect", self.REFUSED,
            "--app", "clang", "--events", "2000", "--clients", "1",
        )
        assert result.returncode == 1, result.stdout
        assert "unreachable" in result.stdout
        assert "Traceback" not in result.stdout

    def test_serve_bad_address_exits_2(self):
        result = _repro("serve", "status", "--connect", "not-an-address")
        assert result.returncode == 2, result.stdout
        assert "HOST:PORT" in result.stdout

    def test_cluster_worker_refused_exits_1(self, tmp_path):
        result = _repro(
            "cluster", "worker", "--coordinator", self.REFUSED,
            "--cache-dir", str(tmp_path / "cache"),
            "--connect-window", "0.5",
            timeout=60,
        )
        assert result.returncode == 1, result.stdout
        assert "Traceback" not in result.stdout

    def test_serve_unknown_subcommand_exits_2(self):
        result = _repro("serve", "bogus")
        assert result.returncode == 2, result.stdout


class TestSweepSpecExitCodes:
    """Invalid sweep specs are bad input: typed error, exit 2, no
    traceback — the same contract as every other malformed argument."""

    def _spec(self, tmp_path, body):
        path = tmp_path / "sweep.toml"
        path.write_text(body)
        return str(path)

    def _run(self, tmp_path, body):
        return _repro(
            "sweep", "run", self._spec(tmp_path, body),
            "--results", str(tmp_path / "results"),
            "--cache-dir", str(tmp_path / "cache"),
        )

    def test_unknown_axis_exits_2(self, tmp_path):
        result = self._run(tmp_path, '[axes]\ncolour = ["red"]\n')
        assert result.returncode == 2, result.stdout
        assert "unknown axis 'colour'" in result.stdout
        assert "Traceback" not in result.stdout

    def test_empty_axis_exits_2(self, tmp_path):
        result = self._run(tmp_path, "[axes]\napp = []\n")
        assert result.returncode == 2, result.stdout
        assert "no values" in result.stdout
        assert "Traceback" not in result.stdout

    def test_type_mismatch_exits_2(self, tmp_path):
        result = self._run(tmp_path, '[axes]\nlabel_kb = ["big"]\n')
        assert result.returncode == 2, result.stdout
        assert "expected a number" in result.stdout
        assert "Traceback" not in result.stdout

    def test_out_of_domain_value_exits_2(self, tmp_path):
        result = self._run(tmp_path, "[axes]\nwarmup = [1.5]\n")
        assert result.returncode == 2, result.stdout
        assert "must be in [0, 1)" in result.stdout

    def test_missing_spec_file_exits_2(self, tmp_path):
        result = _repro(
            "sweep", "run", str(tmp_path / "absent.toml"),
            "--results", str(tmp_path / "results"),
        )
        assert result.returncode == 2, result.stdout
        assert "cannot read sweep spec" in result.stdout

    def test_resume_without_spec_or_journal_exits_2(self, tmp_path):
        result = _repro(
            "sweep", "run", "--results", str(tmp_path / "results"),
        )
        assert result.returncode == 2, result.stdout
        assert "spec file is required" in result.stdout

    def test_valid_single_config_sweep_exits_0(self, tmp_path):
        result = self._run(
            tmp_path,
            'name = "one"\n[defaults]\nn_events = 1000\n'
            'pipeline = "baseline"\n',
        )
        assert result.returncode == 0, result.stdout
        assert "1/1 configs done" in result.stdout
