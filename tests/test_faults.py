"""Fault-injection layer: spec parsing, deterministic triggers, and the
store/scheduler failure paths the chaos suite relies on.

These tests drive each injection site in isolation (the end-to-end
``run-all`` chaos scenarios live in ``test_chaos_runall.py``): the
``REPRO_FAULTS`` grammar, occurrence/probability/once gating, checksum
sealing, quarantine-on-read, atomic writes under ``fail_write``, typed
``WorkerDied``/``TaskTimeout`` errors, and retry/backoff bookkeeping.
"""

import os
import time

import pytest

from repro.orchestrator import faults
from repro.orchestrator.faults import (
    CRASH_EXIT_CODE,
    FaultInjector,
    FaultRule,
    FaultSpecError,
    InjectedFault,
    parse_spec,
)
from repro.orchestrator.journal import (
    RunJournal,
    journal_path,
    list_runs,
    load_journal,
)
from repro.orchestrator.scheduler import (
    CANCELLED,
    DONE,
    FAILED,
    RetryPolicy,
    TaskGraph,
    TaskRecord,
    TaskTimeout,
    WorkerDied,
)
from repro.orchestrator.store import (
    ArtifactStore,
    CorruptArtifact,
    seal_payload,
    unseal_payload,
)
from repro.sim.simulator import SimResult


@pytest.fixture(autouse=True)
def clean_fault_env(monkeypatch):
    """Each test starts with no fault plan and a fresh injector cache."""
    monkeypatch.delenv(faults.FAULTS_ENV, raising=False)
    monkeypatch.delenv(faults.FAULTS_STATE_ENV, raising=False)
    faults.reset()
    faults.set_attempt(1)
    yield
    faults.reset()
    faults.set_attempt(1)


def _timing_result(app="mysql"):
    """Cheapest real artifact: a SimResult for the timing codec."""
    return SimResult(
        app=app, config_name="test", instructions=1000, hint_instructions=0,
        cycles=1500.0, base_cycles=1000.0, squash_cycles=300.0,
        icache_stall_cycles=120.0, btb_stall_cycles=80.0,
        icache_misses=10, icache_misses_covered=4, mispredictions=25,
    )


class TestSpecParsing:
    def test_all_sites_and_options(self):
        rules = parse_spec(
            "crash_task:match=baseline:*,nth=2;"
            "hang_task:delay=0.5,attempts=2;"
            "corrupt_artifact:p=0.25,seed=7,once=1;"
            "fail_write"
        )
        assert [r.site for r in rules] == [
            "crash_task", "hang_task", "corrupt_artifact", "fail_write",
        ]
        crash, hang, corrupt, fail = rules
        assert crash.match == "baseline:*" and crash.nth == 2
        assert hang.delay == 0.5 and hang.attempts == 2
        assert corrupt.p == 0.25 and corrupt.seed == 7 and corrupt.once
        assert fail.match == "*" and fail.nth is None and fail.p is None

    def test_defaults(self):
        (rule,) = parse_spec("crash_task")
        assert rule == FaultRule(site="crash_task")
        assert rule.match == "*" and rule.attempts == 1 and not rule.once

    def test_empty_and_whitespace_chunks_skipped(self):
        assert parse_spec("") == ()
        assert parse_spec(" ; ; ") == ()
        assert len(parse_spec("crash_task; ;fail_write")) == 2

    def test_describe_reparses_to_same_rule(self):
        for spec in (
            "crash_task:match=baseline:*,nth=2",
            "corrupt_artifact:p=0.5,seed=3,once=1",
            "fail_write:attempts=3",
        ):
            (rule,) = parse_spec(spec)
            (reparsed,) = parse_spec(rule.describe())
            assert reparsed == rule

    @pytest.mark.parametrize("bad", [
        "explode_task",                    # unknown site
        "crash_task:nth",                  # option without '='
        "crash_task:nth=soon",             # non-integer
        "hang_task:delay=never",           # non-float
        "crash_task:verbosity=9",          # unknown option
        "corrupt_artifact:p=1.5",          # probability out of range
        "corrupt_artifact:p=-0.1",
    ])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(FaultSpecError):
            parse_spec(bad)


class TestInjectorTriggers:
    def test_nth_fires_exactly_once_on_nth_occurrence(self):
        injector = FaultInjector(parse_spec("crash_task:nth=3"))
        fired = [injector.check("crash_task", "t") is not None for _ in range(6)]
        assert fired == [False, False, True, False, False, False]

    def test_match_glob_filters_names(self):
        injector = FaultInjector(parse_spec("crash_task:match=baseline:*"))
        assert injector.check("crash_task", "trace:mysql") is None
        assert injector.check("crash_task", "baseline:mysql") is not None

    def test_site_mismatch_never_fires(self):
        injector = FaultInjector(parse_spec("fail_write"))
        assert injector.check("crash_task", "anything") is None

    def test_probability_is_deterministic_across_instances(self):
        spec = "crash_task:p=0.5,seed=11"
        names = [f"task{i}" for i in range(20)]
        first = [
            FaultInjector(parse_spec(spec)) for _ in range(2)
        ]
        outcomes = [
            [inj.check("crash_task", name) is not None for name in names]
            for inj in first
        ]
        assert outcomes[0] == outcomes[1]
        assert any(outcomes[0]) and not all(outcomes[0])

    def test_probability_seed_changes_plan(self):
        names = [f"task{i}" for i in range(40)]
        plans = []
        for seed in (1, 2):
            injector = FaultInjector(parse_spec(f"crash_task:p=0.5,seed={seed}"))
            plans.append(
                tuple(injector.check("crash_task", n) is not None for n in names)
            )
        assert plans[0] != plans[1]

    def test_attempt_gating_defaults_to_first_attempt(self):
        injector = FaultInjector(parse_spec("crash_task"))
        faults.set_attempt(2)
        assert injector.check("crash_task", "t") is None
        faults.set_attempt(1)
        assert injector.check("crash_task", "t") is not None

    def test_once_latches_within_process(self):
        injector = FaultInjector(parse_spec("crash_task:once=1"))
        assert injector.check("crash_task", "a") is not None
        assert injector.check("crash_task", "b") is None

    def test_once_latches_across_injectors_via_state_dir(self, tmp_path):
        state = str(tmp_path / "state")
        first = FaultInjector(parse_spec("crash_task:once=1"), state_dir=state)
        assert first.check("crash_task", "a") is not None
        # A different process would build its own injector; the marker
        # file is what stops the rule from firing again.
        second = FaultInjector(parse_spec("crash_task:once=1"), state_dir=state)
        assert second.check("crash_task", "a") is None
        assert os.listdir(state)

    def test_active_follows_env_value(self, monkeypatch):
        assert faults.active() is None
        monkeypatch.setenv(faults.FAULTS_ENV, "fail_write")
        injector = faults.active()
        assert injector is not None
        assert faults.active() is injector  # cached per env value
        monkeypatch.setenv(faults.FAULTS_ENV, "crash_task")
        assert faults.active() is not injector
        monkeypatch.setenv(faults.FAULTS_ENV, "")
        assert faults.active() is None


class TestSiteHelpers:
    def test_crash_task_raises_inline(self):
        injector = FaultInjector(parse_spec("crash_task"))
        with pytest.raises(InjectedFault) as excinfo:
            injector.on_task_start("baseline:mysql")
        assert excinfo.value.site == "crash_task"
        assert excinfo.value.name == "baseline:mysql"

    def test_hang_task_sleeps_for_delay(self):
        injector = FaultInjector(parse_spec("hang_task:delay=0.1"))
        t0 = time.perf_counter()
        injector.on_task_start("t")
        assert time.perf_counter() - t0 >= 0.1

    def test_fail_write_raises(self):
        injector = FaultInjector(parse_spec("fail_write:match=timing/*"))
        injector.on_store_write("trace/abc")  # no match, no fault
        with pytest.raises(InjectedFault):
            injector.on_store_write("timing/abc")

    def test_corrupt_bytes_flips_one_byte_deterministically(self):
        payload = bytes(range(256)) * 4
        damaged = FaultInjector(parse_spec("corrupt_artifact")).corrupt_bytes(
            "timing/abc", payload
        )
        again = FaultInjector(parse_spec("corrupt_artifact")).corrupt_bytes(
            "timing/abc", payload
        )
        assert damaged == again
        assert damaged != payload
        diffs = [i for i, (a, b) in enumerate(zip(payload, damaged)) if a != b]
        assert len(diffs) == 1

    def test_corrupt_bytes_passthrough_without_match(self):
        injector = FaultInjector(parse_spec("corrupt_artifact:match=trace/*"))
        payload = b"payload"
        assert injector.corrupt_bytes("timing/abc", payload) == payload


class TestSealing:
    def test_round_trip(self, tmp_path):
        payload = b"x" * 500
        assert unseal_payload(seal_payload(payload), tmp_path / "f") == payload

    def test_truncation_detected(self, tmp_path):
        blob = seal_payload(b"x" * 500)
        with pytest.raises(CorruptArtifact, match="truncated|checksum"):
            unseal_payload(blob[:-10], tmp_path / "f")

    def test_bit_flip_detected(self, tmp_path):
        blob = bytearray(seal_payload(b"x" * 500))
        blob[100] ^= 0x01
        with pytest.raises(CorruptArtifact, match="checksum mismatch"):
            unseal_payload(bytes(blob), tmp_path / "f")

    def test_missing_footer_detected(self, tmp_path):
        with pytest.raises(CorruptArtifact, match="missing checksum footer"):
            unseal_payload(b"n" * 500, tmp_path / "f")


class TestStoreFailurePaths:
    KEY = "a" * 32

    def test_fail_write_commits_nothing(self, tmp_path, monkeypatch):
        store = ArtifactStore(tmp_path)
        monkeypatch.setenv(faults.FAULTS_ENV, "fail_write:match=timing/*")
        with pytest.raises(InjectedFault):
            store.put("timing", self.KEY, _timing_result())
        assert not store.has("timing", self.KEY)
        # No temp litter either: the directory holds nothing.
        assert list((tmp_path / "timing").glob("*")) == []
        # The write never counted as a put.
        assert store.stats.puts == 0

    def test_fail_write_recovers_on_retry(self, tmp_path, monkeypatch):
        store = ArtifactStore(tmp_path)
        monkeypatch.setenv(faults.FAULTS_ENV, "fail_write:nth=1")
        with pytest.raises(InjectedFault):
            store.put("timing", self.KEY, _timing_result())
        store.put("timing", self.KEY, _timing_result())  # second occurrence
        assert store.get("timing", self.KEY) == _timing_result()

    def test_corrupt_artifact_quarantined_on_read(self, tmp_path, monkeypatch):
        store = ArtifactStore(tmp_path)
        monkeypatch.setenv(faults.FAULTS_ENV, "corrupt_artifact")
        store.put("timing", self.KEY, _timing_result())
        monkeypatch.setenv(faults.FAULTS_ENV, "")
        assert store.get("timing", self.KEY) is None  # miss, not garbage
        assert not store.has("timing", self.KEY)
        quarantined = list((tmp_path / "quarantine" / "timing").glob("*.npz"))
        assert len(quarantined) == 1
        assert store.stats.kinds["timing"].corrupt == 1
        # The committed name is free again: a rebuild re-puts cleanly.
        store.put("timing", self.KEY, _timing_result())
        assert store.get("timing", self.KEY) == _timing_result()

    def test_verify_scan_quarantines_corrupt_files(self, tmp_path, monkeypatch):
        store = ArtifactStore(tmp_path)
        store.put("timing", "b" * 32, _timing_result())
        monkeypatch.setenv(faults.FAULTS_ENV, "corrupt_artifact:match=timing/a*")
        store.put("timing", self.KEY, _timing_result("clang"))
        monkeypatch.setenv(faults.FAULTS_ENV, "")
        report = store.verify()
        assert report["scanned"] == 2 and report["ok"] == 1
        assert report["corrupt"] == [f"timing/{self.KEY}.npz"]
        assert report["quarantined"] == report["corrupt"]
        # Second scan is clean: quarantine removed the bad file.
        clean = store.verify()
        assert clean["scanned"] == 1 and clean["corrupt"] == []

    def test_verify_can_leave_files_in_place(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put("timing", self.KEY, _timing_result())
        victim = tmp_path / "timing" / f"{self.KEY}.npz"
        victim.write_bytes(b"garbage")
        report = store.verify(quarantine_bad=False)
        assert report["corrupt"] and report["quarantined"] == []
        assert victim.exists()


# Module-level task bodies so the process pool can pickle them.
def _ok():
    return "ok"


def _named_task(tag):
    return tag


class TestSchedulerFailures:
    def test_worker_death_is_typed_and_counted(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "crash_task:attempts=99")
        graph = TaskGraph()
        graph.add("victim", _ok)
        (record,) = graph.run(jobs=2, policy=RetryPolicy(retries=1, backoff=0.01))
        assert record.status == FAILED
        assert "WorkerDied" in record.error
        assert f"exit code {CRASH_EXIT_CODE}" in record.error
        assert record.attempts == 2
        assert record.worker_deaths == 2

    def test_retry_recovers_from_first_attempt_crash(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "crash_task")  # attempts=1 default
        graph = TaskGraph()
        graph.add("victim", _ok)
        (record,) = graph.run(jobs=2, policy=RetryPolicy(retries=1, backoff=0.01))
        assert record.status == DONE
        assert record.result == "ok"
        assert record.attempts == 2
        assert record.worker_deaths == 1

    def test_timeout_reclaims_hung_worker(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "hang_task:delay=60,attempts=99")
        graph = TaskGraph()
        graph.add("hung", _ok)
        t0 = time.perf_counter()
        (record,) = graph.run(
            jobs=2, policy=RetryPolicy(retries=0, timeout=0.5, backoff=0.01)
        )
        assert time.perf_counter() - t0 < 30  # terminated, not waited out
        assert record.status == FAILED
        assert "TaskTimeout" in record.error
        assert record.timeouts == 1

    def test_timeout_then_retry_succeeds(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "hang_task:delay=60")
        graph = TaskGraph()
        graph.add("hung", _ok)
        (record,) = graph.run(
            jobs=2, policy=RetryPolicy(retries=1, timeout=0.5, backoff=0.01)
        )
        assert record.status == DONE and record.attempts == 2
        assert record.timeouts == 1

    def test_inline_crash_raises_injected_fault_and_retries(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "crash_task")
        graph = TaskGraph()
        graph.add("victim", _ok)
        (record,) = graph.run(jobs=1, policy=RetryPolicy(retries=1, backoff=0.0))
        assert record.status == DONE and record.attempts == 2

    def test_worker_died_and_timeout_messages(self):
        died = WorkerDied("baseline:mysql", attempt=2, exitcode=-9)
        assert died.task == "baseline:mysql"
        assert died.attempt == 2 and died.exitcode == -9
        assert "baseline:mysql" in str(died) and "attempt 2" in str(died)
        hung = TaskTimeout("trace:clang", attempt=1, timeout=5.0)
        assert hung.task == "trace:clang" and hung.timeout == 5.0
        assert "trace:clang" in str(hung)

    def test_backoff_delay_grows_and_caps(self):
        policy = RetryPolicy(
            retries=5, backoff=0.1, backoff_factor=2.0, max_backoff=0.5, jitter=0.0
        )
        delays = [policy.delay("t", attempt) for attempt in range(1, 6)]
        assert delays == sorted(delays)
        assert delays[0] == pytest.approx(0.1)
        assert all(d <= 0.5 for d in delays)
        # Deterministic: same task/attempt, same delay.
        assert policy.delay("t", 3) == policy.delay("t", 3)

    def test_backoff_jitter_is_deterministic_per_task(self):
        policy = RetryPolicy(retries=3, backoff=0.2, jitter=0.5)
        assert policy.delay("a", 1) == policy.delay("a", 1)
        assert policy.delay("a", 1) != policy.delay("b", 1)


class TestJournal:
    def _record(self, name, status=DONE, attempts=1, error=""):
        return TaskRecord(
            name=name, status=status, seconds=0.5, attempts=attempts, error=error
        )

    def test_round_trip(self, tmp_path):
        journal = RunJournal.start(tmp_path, "run1", {"figures": ["fig02"]})
        journal.record_task(self._record("a"))
        journal.record_task(self._record("b", status=FAILED, error="boom\nlast"))
        journal.record_task(self._record("c", status=CANCELLED))
        journal.finish(interrupted=True, failed=1, cancelled=1)
        state = load_journal(tmp_path, "run1")
        assert state.run_id == "run1"
        assert state.params == {"figures": ["fig02"]}
        assert state.completed == {"a"}
        assert state.task_status == {"a": DONE, "b": FAILED, "c": CANCELLED}
        assert state.ended and state.sessions == 1

    def test_resume_marks_new_session_and_supersedes_status(self, tmp_path):
        journal = RunJournal.start(tmp_path, "run1", {})
        journal.record_task(self._record("a", status=FAILED, error="x"))
        resumed = RunJournal.resume(tmp_path, "run1")
        resumed.record_task(self._record("a"))  # retried to done this time
        state = load_journal(tmp_path, "run1")
        assert state.sessions == 2
        assert state.completed == {"a"}
        assert not state.ended

    def test_resumed_records_not_rejournaled(self, tmp_path):
        journal = RunJournal.start(tmp_path, "run1", {})
        record = self._record("a")
        record.resumed = True
        journal.record_task(record)
        assert load_journal(tmp_path, "run1").task_status == {}

    def test_resume_missing_journal_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            RunJournal.resume(tmp_path, "ghost")

    def test_torn_trailing_line_tolerated(self, tmp_path):
        journal = RunJournal.start(tmp_path, "run1", {})
        journal.record_task(self._record("a"))
        path = journal_path(tmp_path, "run1")
        with open(path, "a") as handle:
            handle.write('{"type": "task", "name": "b", "sta')  # killed mid-append
        state = load_journal(tmp_path, "run1")
        assert state.completed == {"a"}

    def test_list_runs_and_absent_journal(self, tmp_path):
        assert list_runs(tmp_path) == []
        assert load_journal(tmp_path, "nope") is None
        RunJournal.start(tmp_path, "r1", {})
        RunJournal.start(tmp_path, "r2", {})
        assert set(list_runs(tmp_path)) == {"r1", "r2"}
