"""Cycle-stepped frontend model, cross-validated against the analytic one."""

import pytest

from repro.sim import simulate_timing
from repro.sim.frontend import simulate_frontend


class TestFrontendModel:
    def test_basic_accounting(self, tiny_trace, tiny_baseline):
        result = simulate_frontend(tiny_trace, tiny_baseline)
        assert result.cycles > 0
        assert 0 < result.mean_ftq_occupancy <= 24
        assert result.fills_timely <= result.fills_issued

    def test_ideal_faster_than_baseline(self, tiny_trace, tiny_baseline):
        base = simulate_frontend(tiny_trace, tiny_baseline)
        ideal = simulate_frontend(tiny_trace, None)
        assert ideal.cycles < base.cycles
        assert ideal.squash_cycles == 0

    def test_fdip_hides_fill_latency(self, tiny_trace, tiny_baseline):
        with_fdip = simulate_frontend(tiny_trace, tiny_baseline, fdip=True)
        without = simulate_frontend(tiny_trace, tiny_baseline, fdip=False)
        assert with_fdip.fetch_stall_cycles < without.fetch_stall_cycles
        assert with_fdip.fills_timely > 0

    def test_squashes_match_analytic_model(self, tiny_trace, tiny_baseline):
        detailed = simulate_frontend(tiny_trace, tiny_baseline)
        analytic = simulate_timing(tiny_trace, tiny_baseline)
        assert detailed.squash_cycles == analytic.squash_cycles

    def test_agrees_with_analytic_on_ordering(self, tiny_trace, tiny_baseline):
        """The two timing models must rank configurations identically."""
        detailed_base = simulate_frontend(tiny_trace, tiny_baseline)
        detailed_ideal = simulate_frontend(tiny_trace, None)
        analytic_base = simulate_timing(tiny_trace, tiny_baseline)
        analytic_ideal = simulate_timing(tiny_trace, None)
        detailed_speedup = detailed_ideal.speedup_over(detailed_base)
        analytic_speedup = analytic_ideal.speedup_over(analytic_base)
        assert detailed_speedup > 0 and analytic_speedup > 0

    def test_squash_flushes_ftq(self, tiny_trace, tiny_baseline):
        # With many squashes, mean occupancy drops versus the ideal run.
        base = simulate_frontend(tiny_trace, tiny_baseline)
        ideal = simulate_frontend(tiny_trace, None)
        assert base.mean_ftq_occupancy <= ideal.mean_ftq_occupancy + 1e-9
