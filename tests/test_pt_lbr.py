"""PT packetisation and LBR-style sampled profiling."""

import numpy as np
import pytest

from repro.bpu.scaling import scaled_tage_sc_l
from repro.core.whisper import WhisperOptimizer
from repro.profiling.lbr import LBR_DEPTH, collect_lbr_profile, sampling_overhead
from repro.profiling.profile import BranchProfile
from repro.profiling.pt import (
    PacketDecoder,
    PacketEncoder,
    PsbPacket,
    TipPacket,
    TntPacket,
    roundtrip_outcomes,
)


class TestPackets:
    def test_tnt_encoding_layout(self):
        packet = TntPacket((True, False, True))
        header, payload = packet.encode()
        assert header == 0b01
        assert payload == 0b1101  # bits LSB-first + stop bit at position 3

    def test_tnt_capacity_bounds(self):
        with pytest.raises(ValueError):
            TntPacket(())
        with pytest.raises(ValueError):
            TntPacket((True,) * 7)

    def test_tip_roundtrip(self):
        packet = TipPacket(0x40BEEF)
        decoded = PacketDecoder().decode(packet.encode())
        assert decoded.tips == [0x40BEEF]

    def test_psb(self):
        decoded = PacketDecoder().decode(PsbPacket().encode())
        assert decoded.psb_count == 1


class TestStreamRoundtrip:
    def test_exact_outcome_recovery(self, tiny_trace):
        recovered = roundtrip_outcomes(tiny_trace)
        expected = tiny_trace.taken[tiny_trace.is_conditional]
        assert np.array_equal(recovered, expected)

    def test_roundtrip_with_tips(self, tiny_trace):
        encoder = PacketEncoder()
        encoded = encoder.encode_trace(tiny_trace, tip_every=500)
        decoded = PacketDecoder().decode(encoded)
        expected = tiny_trace.taken[tiny_trace.is_conditional]
        assert np.array_equal(decoded.outcomes_array(), expected)
        assert len(decoded.tips) == (tiny_trace.n_events - 1) // 500

    def test_compression_below_half_byte_per_branch(self, tiny_trace):
        # PT's efficiency claim: ~1/3 byte per conditional branch here
        # (6 outcomes per 2-byte packet).
        encoded = PacketEncoder().encode_trace(tiny_trace)
        assert PacketEncoder.bytes_per_branch(encoded, tiny_trace) < 0.5

    def test_psb_markers_emitted(self, tiny_trace):
        encoded = PacketEncoder(psb_interval=64).encode_trace(tiny_trace)
        decoded = PacketDecoder().decode(encoded)
        assert decoded.psb_count > 1

    def test_decoder_rejects_garbage(self):
        with pytest.raises(ValueError):
            PacketDecoder().decode(bytes([0xFF]))
        with pytest.raises(ValueError):
            PacketDecoder().decode(bytes([0b01]))  # truncated TNT
        with pytest.raises(ValueError):
            PacketDecoder().decode(bytes([0b01, 0]))  # missing stop bit
        with pytest.raises(ValueError):
            PacketDecoder().decode(bytes([0b10, 1, 2]))  # truncated TIP

    def test_encoder_validates_interval(self):
        with pytest.raises(ValueError):
            PacketEncoder(psb_interval=0)


class TestLbr:
    def test_sampled_counts_are_subset(self, tiny_trace, tiny_profile):
        sampled = collect_lbr_profile(
            [tiny_trace], lambda: scaled_tage_sc_l(64), sample_period=64
        )
        for pc, (execs, mispredicts) in sampled.per_pc.items():
            full_execs, full_mispredicts = tiny_profile.per_pc[pc]
            assert execs <= full_execs
            assert mispredicts <= full_mispredicts

    def test_dense_sampling_converges_to_full_profile(self, tiny_trace, tiny_profile):
        # Sampling every 32 branches with a 32-deep stack sees everything.
        sampled = collect_lbr_profile(
            [tiny_trace], lambda: scaled_tage_sc_l(64), sample_period=32, depth=32
        )
        # All but the trailing (unsampled) partial window is captured.
        assert sampled.total_executions >= tiny_profile.total_executions - 32

    def test_misprediction_rates_close_to_full(self, tiny_trace, tiny_profile):
        sampled = collect_lbr_profile(
            [tiny_trace], lambda: scaled_tage_sc_l(64), sample_period=48
        )
        full_rate = tiny_profile.total_mispredictions / tiny_profile.total_executions
        sampled_rate = sampled.total_mispredictions / sampled.total_executions
        assert abs(full_rate - sampled_rate) < 0.05

    def test_whisper_trains_from_lbr_profile(self, tiny_trace, tiny_program):
        sampled = collect_lbr_profile(
            [tiny_trace], lambda: scaled_tage_sc_l(64), sample_period=48
        )
        trained = WhisperOptimizer().train(sampled)
        assert trained.n_hints > 0

    def test_validation(self, tiny_trace):
        with pytest.raises(ValueError):
            collect_lbr_profile([tiny_trace], lambda: scaled_tage_sc_l(64), sample_period=0)
        with pytest.raises(ValueError):
            collect_lbr_profile(
                [tiny_trace], lambda: scaled_tage_sc_l(64), depth=LBR_DEPTH + 1
            )
        with pytest.raises(ValueError):
            collect_lbr_profile([], lambda: scaled_tage_sc_l(64))

    def test_sampling_overhead(self):
        assert sampling_overhead(64) == pytest.approx(0.5)
        assert sampling_overhead(16) == 1.0
