"""Content-addressed cache keys: stability and invalidation."""

import subprocess
import sys

import numpy as np
import pytest

from repro.orchestrator import keys
from repro.orchestrator.keys import (
    artifact_key,
    canonical,
    canonical_json,
    config_fingerprint,
    fingerprint,
    spec_fingerprint,
)
from repro.workloads.registry import get_spec


class TestCanonical:
    def test_mapping_order_is_irrelevant(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_tuple_and_list_agree(self):
        assert canonical_json((1, 2, 3)) == canonical_json([1, 2, 3])

    def test_sets_are_sorted(self):
        assert canonical({3, 1, 2}) == [1, 2, 3]

    def test_numpy_scalars_match_python(self):
        assert canonical_json(np.int64(7)) == canonical_json(7)
        assert canonical_json({"x": np.float64(0.5)}) == canonical_json({"x": 0.5})

    def test_dataclass_uses_full_field_dump(self):
        spec = get_spec("mysql")
        rendered = canonical(spec)
        assert rendered["__dataclass__"] == type(spec).__name__
        assert rendered["name"] == "mysql"
        assert rendered["seed"] == spec.seed

    def test_unrenderable_type_is_rejected(self):
        with pytest.raises(TypeError):
            canonical(object())


class TestArtifactKey:
    def test_same_request_same_key(self):
        spec = get_spec("mysql")
        a = artifact_key("trace", spec=spec, input_id=0, n_events=1000)
        b = artifact_key("trace", spec=spec, input_id=0, n_events=1000)
        assert a == b

    def test_any_field_change_changes_key(self):
        spec = get_spec("mysql")
        base = artifact_key("trace", spec=spec, input_id=0, n_events=1000)
        assert artifact_key("trace", spec=spec, input_id=1, n_events=1000) != base
        assert artifact_key("trace", spec=spec, input_id=0, n_events=2000) != base
        assert artifact_key("prediction", spec=spec, input_id=0, n_events=1000) != base

    def test_spec_change_invalidates(self):
        assert spec_fingerprint(get_spec("mysql")) != spec_fingerprint(get_spec("kafka"))

    def test_schema_version_bump_invalidates_everything(self, monkeypatch):
        spec = get_spec("mysql")
        before = artifact_key("trace", spec=spec, input_id=0, n_events=1000)
        monkeypatch.setattr(keys, "CODE_SCHEMA_VERSION", keys.CODE_SCHEMA_VERSION + 1)
        after = artifact_key("trace", spec=spec, input_id=0, n_events=1000)
        assert before != after

    def test_config_fingerprint_distinguishes_configs(self):
        from repro.core.whisper import WhisperConfig

        assert config_fingerprint(None) == "default"
        default = config_fingerprint(WhisperConfig())
        changed = config_fingerprint(WhisperConfig(hash_bits=12))
        assert default != changed

    def test_key_is_stable_across_processes(self):
        """No dependence on Python's salted hash(): a fresh interpreter
        (different PYTHONHASHSEED) must derive the identical key."""
        program = (
            "from repro.orchestrator.keys import artifact_key\n"
            "from repro.workloads.registry import get_spec\n"
            "print(artifact_key('trace', spec=get_spec('mysql'),"
            " input_id=0, n_events=1000))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", program],
            capture_output=True,
            text=True,
            check=True,
            env={"PYTHONPATH": "src", "PYTHONHASHSEED": "12345", "PATH": "/usr/bin:/bin"},
            cwd=str(__import__("pathlib").Path(__file__).resolve().parents[1]),
        )
        local = artifact_key(
            "trace", spec=get_spec("mysql"), input_id=0, n_events=1000
        )
        assert out.stdout.strip() == local

    def test_fingerprint_length(self):
        assert len(fingerprint({"a": 1})) == keys.DIGEST_CHARS


class TestKernelFields:
    """Kernel-choice propagation into store keys (vector-kernel PR)."""

    def test_kernels_share_the_cache_by_default(self, monkeypatch):
        """Bit-identical kernels must map to the same artifact keys, so
        a cache warmed under one REPRO_KERNEL serves the others."""
        assert keys.KERNEL_AFFECTS_ARTIFACTS is False
        assert keys.kernel_fields() == {}
        spec = get_spec("mysql")
        per_kernel = {}
        for kernel in ("scalar", "vector", "native"):
            monkeypatch.setenv("REPRO_KERNEL", kernel)
            per_kernel[kernel] = artifact_key(
                "timing", spec=spec, **keys.kernel_fields(), input_id=1, n_events=1000
            )
        assert len(set(per_kernel.values())) == 1

    def test_exact_tiers_share_the_cache_even_when_keys_split(self, monkeypatch):
        """With KERNEL_AFFECTS_ARTIFACTS on, what enters the key is the
        equivalence class, so the three exact tiers still share one
        cache entry (determinism is the house invariant)."""
        monkeypatch.setattr(keys, "KERNEL_AFFECTS_ARTIFACTS", True)
        assert all(
            keys.KERNEL_EQUIVALENCE[k] == "exact"
            for k in ("scalar", "vector", "native")
        )
        spec = get_spec("mysql")
        per_kernel = {}
        for kernel in ("scalar", "vector", "native"):
            monkeypatch.setenv("REPRO_KERNEL", kernel)
            assert keys.kernel_fields() == {"kernel": "exact"}
            per_kernel[kernel] = artifact_key(
                "timing", spec=spec, **keys.kernel_fields(), input_id=1, n_events=1000
            )
        assert len(set(per_kernel.values())) == 1

    def test_divergent_kernels_would_split_the_cache(self, monkeypatch):
        """A tier declared non-exact gets its own cache partition."""
        monkeypatch.setattr(keys, "KERNEL_AFFECTS_ARTIFACTS", True)
        monkeypatch.setattr(
            keys,
            "KERNEL_EQUIVALENCE",
            {**keys.KERNEL_EQUIVALENCE, "native": "approx-v1"},
        )
        spec = get_spec("mysql")
        monkeypatch.setenv("REPRO_KERNEL", "vector")
        vector_key = artifact_key(
            "timing", spec=spec, **keys.kernel_fields(), input_id=1, n_events=1000
        )
        monkeypatch.setenv("REPRO_KERNEL", "native")
        assert keys.kernel_fields() == {"kernel": "approx-v1"}
        native_key = artifact_key(
            "timing", spec=spec, **keys.kernel_fields(), input_id=1, n_events=1000
        )
        assert vector_key != native_key

    def test_schema_is_v2_for_vector_kernel_timing(self):
        """The timing recomposition changed cycle float association; v1
        timing artifacts must be unreachable."""
        assert keys.CODE_SCHEMA_VERSION >= 2
