"""End-to-end sweep runs: local pool, TCP cluster, faults, resume.

The house determinism invariant, extended to sweeps: whatever the
backend — inline, local pool, cluster workers (including a SIGKILLed
one mid-sweep), or an interrupted run finished by ``--resume`` — the
registry index must come out byte-identical to an undisturbed local
run's, and re-running a sweep must be all cache hits and zero appends.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro import registry
from repro.cli import main as cli_main
from repro.orchestrator import faults
from repro.orchestrator.journal import RunJournal
from repro.sweep.runner import run_sweep
from repro.sweep.spec import load_sweep_spec

MINI_SPEC = """
name = "mini"

[defaults]
n_events = 2000
pipeline = "baseline"

[axes]
app = ["clang", "mysql"]
label_kb = [8, 64]
"""


@pytest.fixture(autouse=True)
def clean_fault_env(monkeypatch):
    monkeypatch.delenv(faults.FAULTS_ENV, raising=False)
    monkeypatch.delenv(faults.FAULTS_STATE_ENV, raising=False)
    faults.reset()
    yield
    faults.reset()


@pytest.fixture()
def spec_path(tmp_path):
    path = tmp_path / "mini.toml"
    path.write_text(MINI_SPEC)
    return path


@pytest.fixture(scope="module")
def reference_index(tmp_path_factory):
    """The registry index bytes an undisturbed local run produces."""
    root = tmp_path_factory.mktemp("sweep-reference")
    path = root / "mini.toml"
    path.write_text(MINI_SPEC)
    os.environ.pop(faults.FAULTS_ENV, None)
    faults.reset()
    report = run_sweep(
        spec_path=str(path), jobs=2,
        cache_dir=str(root / "cache"), results_dir=str(root / "results"),
    )
    assert report.counts.get("done") == 4, report
    return registry.index_path(root / "results").read_bytes()


def _free_port() -> int:
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


def _worker_env(extra=None):
    env = dict(os.environ)
    env.pop(faults.FAULTS_ENV, None)
    env.pop(faults.FAULTS_STATE_ENV, None)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (
            os.path.join(os.path.dirname(__file__), "..", "src"),
            env.get("PYTHONPATH", ""),
        ) if p
    )
    env.update(extra or {})
    return env


def _start_worker(port, cache_dir, worker_id, slots=2, env=None):
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "cluster", "worker",
         "--coordinator", f"127.0.0.1:{port}", "--slots", str(slots),
         "--cache-dir", str(cache_dir), "--worker-id", worker_id],
        env=env or _worker_env(),
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )


def _finish(process, timeout=60):
    try:
        output, _ = process.communicate(timeout=timeout)
    except subprocess.TimeoutExpired:
        process.kill()
        output, _ = process.communicate()
        return -9, output
    return process.returncode, output


class TestLocalSweep:
    def test_populates_registry(self, tmp_path, spec_path, reference_index):
        results = tmp_path / "results"
        report = run_sweep(
            spec_path=str(spec_path), jobs=2,
            cache_dir=str(tmp_path / "cache"), results_dir=str(results),
        )
        assert report.counts.get("done") == 4
        assert report.appended == 4 and report.deduplicated == 0
        assert not report.interrupted
        index = registry.load_index(results)
        assert len(index.rows) == 4
        for row in index.rows:
            assert row["sweep"] == "mini"
            assert registry.read_row(results, row["config_id"]) == row
            assert row["metrics"]["baseline_mpki"] > 0
        assert registry.index_path(results).read_bytes() == reference_index

    def test_rerun_appends_nothing_and_hits_cache(self, tmp_path, spec_path):
        kwargs = dict(
            spec_path=str(spec_path), jobs=1,
            cache_dir=str(tmp_path / "cache"),
            results_dir=str(tmp_path / "results"),
        )
        run_sweep(**kwargs)
        before = registry.index_path(tmp_path / "results").read_bytes()
        again = run_sweep(**kwargs)
        assert again.appended == 0
        assert again.deduplicated == 4
        assert again.cache.get("misses", 0) == 0, again.cache
        assert again.cache.get("hits", 0) > 0
        assert registry.index_path(tmp_path / "results").read_bytes() == before

    def test_whisper_pipeline_reports_reduction(self, tmp_path):
        path = tmp_path / "whisper.toml"
        path.write_text(
            'name = "w"\n[defaults]\nn_events = 1500\nmax_candidates = 4\n'
            '[axes]\nhint_budget = [0, 8]\n'
        )
        report = run_sweep(
            spec_path=str(path), cache_dir=str(tmp_path / "cache"),
            results_dir=str(tmp_path / "results"),
        )
        assert report.counts.get("done") == 2
        for row in registry.load_index(tmp_path / "results").rows:
            assert "whisper_mpki" in row["metrics"]
            assert "reduction_pct" in row["metrics"]
            assert row["config"]["pipeline"] == "whisper"

    def test_failed_config_then_resume_matches_reference(
        self, tmp_path, spec_path, reference_index, monkeypatch
    ):
        """One config crashes unretryably; --resume (faults off) finishes
        the sweep and the final index is byte-identical anyway."""
        victim = load_sweep_spec(spec_path).expand()[0].config_id
        monkeypatch.setenv(
            faults.FAULTS_ENV, f"crash_task:match=cfg:{victim},attempts=99"
        )
        results = tmp_path / "results"
        report = run_sweep(
            spec_path=str(spec_path), jobs=2, retries=0,
            cache_dir=str(tmp_path / "cache"), results_dir=str(results),
            run_id="sweep-faulted",
        )
        assert report.counts.get("failed") == 1
        assert report.counts.get("done") == 3
        assert report.appended == 3

        monkeypatch.delenv(faults.FAULTS_ENV)
        faults.reset()
        resumed = run_sweep(resume="sweep-faulted", results_dir=str(results))
        assert resumed.counts.get("done") == 4
        assert resumed.appended == 1
        # The index grew across two sessions, so its *line order* may
        # differ from a one-session run — but the queryable content is
        # identical row for row (query sorts by config id).
        reference_rows = sorted(
            (json.loads(line) for line in reference_index.splitlines()),
            key=lambda row: row["config_id"],
        )
        assert registry.query(results) == reference_rows

    def test_resume_refuses_an_edited_spec(self, tmp_path, spec_path):
        results = tmp_path / "results"
        run_sweep(
            spec_path=str(spec_path), cache_dir=str(tmp_path / "cache"),
            results_dir=str(results), run_id="pinned",
        )
        spec_path.write_text(MINI_SPEC + '\nexplore_fraction = [0.01]\n')
        with pytest.raises(ValueError, match="changed since run"):
            run_sweep(resume="pinned", results_dir=str(results))

    def test_resume_of_non_sweep_journal_rejected(self, tmp_path):
        RunJournal.start(tmp_path, "not-a-sweep", params={"figures": ["fig02"]})
        with pytest.raises(ValueError, match="not a sweep journal"):
            run_sweep(resume="not-a-sweep", results_dir=str(tmp_path))


class TestQueryCli:
    def test_query_output_stable_across_invocations(
        self, tmp_path, spec_path, capsys
    ):
        results = tmp_path / "results"
        run_sweep(
            spec_path=str(spec_path), cache_dir=str(tmp_path / "cache"),
            results_dir=str(results),
        )
        assert cli_main(["runs", "query", "--results", str(results)]) == 0
        first = capsys.readouterr().out
        assert cli_main(["runs", "query", "--results", str(results)]) == 0
        second = capsys.readouterr().out
        assert first == second
        # All four rows, in config-id order, after the header line.
        assert len(first.strip().splitlines()) == 5

    def test_query_where_and_json(self, tmp_path, spec_path, capsys):
        results = tmp_path / "results"
        run_sweep(
            spec_path=str(spec_path), cache_dir=str(tmp_path / "cache"),
            results_dir=str(results),
        )
        code = cli_main([
            "runs", "query", "--results", str(results),
            "--where", "app=mysql", "--where", "label_kb=8", "--json",
        ])
        assert code == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 1
        assert rows[0]["config"]["app"] == "mysql"
        assert rows[0]["config"]["label_kb"] == 8.0

    def test_bad_where_exits_2(self, tmp_path, capsys):
        code = cli_main([
            "runs", "query", "--results", str(tmp_path), "--where", "nonsense",
        ])
        assert code == 2
        assert "bad filter" in capsys.readouterr().out

    def test_sweep_status_lists_runs_and_totals(
        self, tmp_path, spec_path, capsys
    ):
        results = tmp_path / "results"
        run_sweep(
            spec_path=str(spec_path), cache_dir=str(tmp_path / "cache"),
            results_dir=str(results), run_id="status-run",
        )
        assert cli_main(["sweep", "status", "--results", str(results)]) == 0
        out = capsys.readouterr().out
        assert "mini: 4 row(s)" in out
        assert "status-run: sweep mini — 4/4 configs, finished" in out


class TestClusterSweep:
    def test_cluster_index_matches_local_byte_for_byte(
        self, tmp_path, spec_path, reference_index
    ):
        port = _free_port()
        worker = _start_worker(port, tmp_path / "w1", "w1", slots=2)
        results = tmp_path / "results"
        try:
            report = run_sweep(
                spec_path=str(spec_path),
                cache_dir=str(tmp_path / "hub"), results_dir=str(results),
                backend="cluster", coordinator=f"127.0.0.1:{port}",
            )
        finally:
            code, output = _finish(worker)
        assert code == 0, output
        assert report.counts.get("done") == 4
        assert registry.index_path(results).read_bytes() == reference_index

    def test_sigkilled_worker_mid_sweep_still_byte_identical(
        self, tmp_path, spec_path, reference_index
    ):
        """Chaos: SIGKILL a worker holding a leased config.  The victim
        is pinned mid-task by a hang fault so the kill always lands on
        a live lease; the survivor absorbs the reassignment and the
        registry index still matches the undisturbed local run."""
        port = _free_port()
        victim = _start_worker(
            port, tmp_path / "w1", "w1", slots=1,
            env=_worker_env({faults.FAULTS_ENV: "hang_task:match=cfg:*,delay=60"}),
        )
        survivor = _start_worker(port, tmp_path / "w2", "w2", slots=1)

        def _kill_later():
            time.sleep(2.5)
            victim.kill()

        killer = threading.Thread(target=_kill_later)
        killer.start()
        results = tmp_path / "results"
        try:
            report = run_sweep(
                spec_path=str(spec_path),
                cache_dir=str(tmp_path / "hub"), results_dir=str(results),
                backend="cluster", coordinator=f"127.0.0.1:{port}",
                lease_seconds=2.0, retries=2,
            )
        finally:
            killer.join()
            _finish(victim)
            code, output = _finish(survivor)
        assert code == 0, output
        assert report.counts.get("done") == 4
        assert report.counts.get("failed", 0) == 0
        assert registry.index_path(results).read_bytes() == reference_index
