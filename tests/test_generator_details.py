"""Generator internals: caching, input drift, request mechanics."""

import numpy as np
import pytest

from repro.workloads.behaviors import BiasedBehavior, BurstyBehavior
from repro.workloads.generator import (
    _drifted_behaviors,
    _zipf_weights,
    clear_caches,
    generate_trace,
    get_program,
    merged_traces,
)
from repro.workloads.registry import get_spec


class TestZipf:
    def test_normalised(self):
        weights = _zipf_weights(100, 1.0)
        assert weights.sum() == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        weights = _zipf_weights(50, 0.8)
        assert all(b <= a for a, b in zip(weights, weights[1:]))

    def test_steeper_exponent_concentrates(self):
        flat = _zipf_weights(100, 0.5)
        steep = _zipf_weights(100, 1.5)
        assert steep[0] > flat[0]


class TestDrift:
    def test_input_zero_never_drifts(self, tiny_spec, tiny_program):
        assert _drifted_behaviors(tiny_program, 0) == {}

    def test_drift_is_deterministic_per_input(self, tiny_program):
        a = _drifted_behaviors(tiny_program, 2)
        b = _drifted_behaviors(tiny_program, 2)
        assert set(a) == set(b)

    def test_drift_differs_across_inputs(self, tiny_program):
        a = _drifted_behaviors(tiny_program, 1)
        b = _drifted_behaviors(tiny_program, 2)
        assert set(a) != set(b) or not a

    def test_drift_preserves_behavior_class(self, tiny_program):
        overrides = _drifted_behaviors(tiny_program, 1)
        assert overrides, "the tiny app should drift some branches"
        for block, replacement in overrides.items():
            original = tiny_program.behaviors[block]
            if isinstance(original, BurstyBehavior):
                assert isinstance(replacement, BurstyBehavior)
                assert replacement.common == original.common
            else:
                assert isinstance(replacement, BiasedBehavior)

    def test_zero_drift_spec(self):
        from dataclasses import replace

        spec = replace(get_spec("kafka"), name="kafka-nodrift", drift=0.0)
        program = get_program(spec)
        assert _drifted_behaviors(program, 3) == {}


class TestMergedTraces:
    def test_returns_one_trace_per_input(self, tiny_spec):
        traces = merged_traces(tiny_spec, (0, 1, 2), n_events_each=5000)
        assert len(traces) == 3
        assert [t.input_id for t in traces] == [0, 1, 2]
        assert all(t.n_events == 5000 for t in traces)


class TestCaches:
    def test_clear_caches_forces_rebuild(self, tiny_spec):
        a = generate_trace(tiny_spec, 0, 5000)
        clear_caches()
        b = generate_trace(tiny_spec, 0, 5000)
        assert a is not b
        assert np.array_equal(a.block_ids, b.block_ids)
