"""Trace-replay runner: correctness accounting, warm-up views, hint paths."""

import numpy as np
import pytest

from repro.bpu.runner import HintRuntime, RunContext, simulate
from repro.bpu.scaling import scaled_tage_sc_l
from repro.bpu.simple import BimodalPredictor, IdealPredictor, StaticTakenPredictor


class TestBasicAccounting:
    def test_ideal_predictor_is_perfect(self, tiny_trace):
        result = simulate(tiny_trace, IdealPredictor())
        assert result.accuracy == 1.0
        assert result.mispredictions == 0
        assert result.mpki == 0.0

    def test_counts_conditional_branches_only(self, tiny_trace):
        result = simulate(tiny_trace, StaticTakenPredictor(True))
        assert len(result.correct) == tiny_trace.n_conditional

    def test_static_taken_error_matches_taken_rate(self, tiny_trace):
        result = simulate(tiny_trace, StaticTakenPredictor(True))
        cond = tiny_trace.is_conditional
        expected_acc = tiny_trace.taken[cond].mean()
        assert result.accuracy == pytest.approx(expected_acc)

    def test_mpki_uses_all_instructions(self, tiny_trace):
        result = simulate(tiny_trace, StaticTakenPredictor(True))
        expected = 1000.0 * result.mispredictions / tiny_trace.n_instructions
        assert result.mpki == pytest.approx(expected)

    def test_per_pc_stats_sum(self, tiny_trace):
        result = simulate(tiny_trace, BimodalPredictor())
        per_pc = result.per_pc_mispredictions()
        assert sum(e for e, _ in per_pc.values()) == tiny_trace.n_conditional
        assert sum(m for _, m in per_pc.values()) == result.mispredictions

    def test_misprediction_reduction_metric(self, tiny_trace):
        weak = simulate(tiny_trace, StaticTakenPredictor(True))
        strong = simulate(tiny_trace, scaled_tage_sc_l(64))
        reduction = strong.misprediction_reduction(weak)
        assert 0 < reduction <= 100


class TestWarmup:
    def test_warmup_shrinks_measured_region(self, tiny_baseline):
        warmed = tiny_baseline.with_warmup(0.5)
        assert warmed.n_conditional < tiny_baseline.n_conditional
        assert warmed.measured_instructions < tiny_baseline.measured_instructions

    def test_warmup_reduces_cold_mispredictions_rate(self, tiny_baseline):
        cold = tiny_baseline.mispredictions / tiny_baseline.n_conditional
        warm_view = tiny_baseline.with_warmup(0.5)
        warm = warm_view.mispredictions / warm_view.n_conditional
        assert warm <= cold + 0.01

    def test_zero_warmup_is_identity(self, tiny_baseline):
        again = tiny_baseline.with_warmup(0.0)
        assert again.mispredictions == tiny_baseline.mispredictions
        assert again.measured_instructions == tiny_baseline.measured_instructions


class _ConstHintRuntime(HintRuntime):
    """Covers one PC with a constant prediction."""

    def __init__(self, pc, direction):
        self.pc = pc
        self.direction = direction

    def predict(self, pc, ctx):
        if pc == self.pc:
            return self.direction
        return None


class TestHintIntegration:
    def test_hinted_branches_flagged(self, tiny_trace):
        per_pc = tiny_trace.per_branch_stats()
        hot_pc = max(per_pc, key=lambda pc: per_pc[pc][0])
        runtime = _ConstHintRuntime(hot_pc, True)
        result = simulate(tiny_trace, BimodalPredictor(), runtime=runtime)
        assert result.hinted.sum() == per_pc[hot_pc][0]

    def test_hint_overrides_predictor(self, tiny_trace):
        per_pc = tiny_trace.per_branch_stats()
        # Pick a hot, heavily-taken branch and hint it "never taken":
        # every taken execution must now mispredict.
        candidates = [pc for pc, (n, t) in per_pc.items() if n > 20 and t == n]
        pc = candidates[0]
        runtime = _ConstHintRuntime(pc, False)
        result = simulate(tiny_trace, IdealPredictor(), runtime=runtime)
        assert result.mispredictions == per_pc[pc][0]

    def test_token_ring(self, tiny_trace):
        class TokenProbe(HintRuntime):
            wants_tokens = 16

            def __init__(self):
                self.seen = 0

            def predict(self, pc, ctx):
                pcs, dirs = ctx.recent_tokens(16)
                assert len(pcs) == 16 and len(dirs) == 16
                self.seen += 1
                return None

        probe = TokenProbe()
        simulate(tiny_trace.slice(0, 500), BimodalPredictor(), runtime=probe)
        assert probe.seen > 0

    def test_run_context_history_order(self):
        ctx = RunContext()
        ctx.push(0x1, True)
        ctx.push(0x2, False)
        ctx.push(0x3, True)
        assert ctx.history & 0b111 == 0b101

    def test_recent_tokens_most_recent_last(self):
        ctx = RunContext(token_size=4)
        for i, taken in enumerate([True, False, True]):
            ctx.push(0x100 + i * 4, taken)
        pcs, dirs = ctx.recent_tokens(3)
        assert pcs.tolist() == [0x100, 0x104, 0x108]
        assert dirs.tolist() == [1, 0, 1]

    def test_recent_tokens_overflow_raises(self):
        ctx = RunContext(token_size=4)
        with pytest.raises(ValueError):
            ctx.recent_tokens(5)
