"""Extended ROMBF formula trees: semantics, encoding, tables, µarch cost."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.formulas import (
    AND,
    CNIMPL,
    IMPL,
    OR,
    ROMBF_OPS,
    WHISPER_OPS,
    FormulaTree,
    all_formula_table,
    apply_op,
    encoded_bits,
    formula_from_index,
    formula_space_size,
    random_formula,
)


def random_trees(n_inputs=8):
    ops = st.tuples(*[st.sampled_from(WHISPER_OPS)] * (n_inputs - 1))
    return st.builds(
        lambda o, inv: FormulaTree(ops=o, invert=inv, n_inputs=n_inputs),
        ops,
        st.booleans(),
    )


class TestSingleUnitOps:
    """Truth tables of the four single-unit operations (paper Fig 8)."""

    @pytest.mark.parametrize(
        "op,expected",
        [
            (AND, [0, 0, 0, 1]),
            (OR, [0, 1, 1, 1]),
            (IMPL, [1, 1, 0, 1]),     # a -> b
            (CNIMPL, [0, 1, 0, 0]),   # ~a & b
        ],
    )
    def test_truth_table(self, op, expected):
        table = [apply_op(op, a, b) & 1 for a in (0, 1) for b in (0, 1)]
        assert table == expected

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            apply_op(9, 1, 1)

    def test_array_semantics_match_scalar(self):
        a = np.array([False, False, True, True])
        b = np.array([False, True, False, True])
        for op in WHISPER_OPS:
            arr = apply_op(op, a, b)
            scalars = [apply_op(op, int(x), int(y)) & 1 for x, y in zip(a, b)]
            assert arr.astype(int).tolist() == scalars


class TestConstruction:
    def test_requires_power_of_two_inputs(self):
        with pytest.raises(ValueError):
            FormulaTree(ops=(AND, AND), n_inputs=3)

    def test_requires_correct_op_count(self):
        with pytest.raises(ValueError):
            FormulaTree(ops=(AND,), n_inputs=8)

    def test_rejects_bad_op_code(self):
        with pytest.raises(ValueError):
            FormulaTree(ops=(7,), n_inputs=2)


class TestEvaluation:
    def test_and_tree_is_conjunction(self):
        tree = FormulaTree(ops=(AND,) * 7, n_inputs=8)
        assert tree.evaluate(0xFF) == 1
        for i in range(8):
            assert tree.evaluate(0xFF & ~(1 << i)) == 0

    def test_or_tree_is_disjunction(self):
        tree = FormulaTree(ops=(OR,) * 7, n_inputs=8)
        assert tree.evaluate(0) == 0
        for i in range(8):
            assert tree.evaluate(1 << i) == 1

    def test_invert_flips_output(self):
        tree = FormulaTree(ops=(AND,) * 7, n_inputs=8)
        flipped = FormulaTree(ops=(AND,) * 7, invert=True, n_inputs=8)
        for history in (0, 1, 0x0F, 0xFF):
            assert flipped.evaluate(history) == 1 - tree.evaluate(history)

    def test_two_input_implication(self):
        tree = FormulaTree(ops=(IMPL,), n_inputs=2)
        # b0 -> b1; history bit 0 = b0.
        assert tree.evaluate(0b00) == 1
        assert tree.evaluate(0b01) == 0  # b0=1, b1=0
        assert tree.evaluate(0b10) == 1
        assert tree.evaluate(0b11) == 1

    def test_left_subtree_covers_low_bits(self):
        # (b0 & b1) | (b2 & b3): setting only low pair must satisfy it.
        tree = FormulaTree(ops=(OR, AND, AND), n_inputs=4)
        assert tree.evaluate(0b0011) == 1
        assert tree.evaluate(0b1100) == 1
        assert tree.evaluate(0b0101) == 0

    @given(random_trees())
    @settings(max_examples=50)
    def test_batch_matches_scalar(self, tree):
        histories = np.arange(256)
        batch = tree.evaluate_batch(histories)
        scalar = [bool(tree.evaluate(int(h))) for h in histories]
        assert batch.tolist() == scalar

    @given(random_trees())
    @settings(max_examples=30)
    def test_never_constant_without_invert_considered(self, tree):
        # Read-once trees cannot express constants... but monotone-only
        # claims don't hold with IMPL/CNIMPL, so just sanity-check the
        # truth table has the right size.
        assert len(tree.truth_table()) == 256

    def test_monotone_for_and_or_only(self):
        # The original ROMBF restriction: AND/OR trees are monotone.
        rng = np.random.default_rng(5)
        for _ in range(50):
            tree = random_formula(rng, ops_allowed=ROMBF_OPS, allow_invert=False)
            table = tree.truth_table()
            for h in range(256):
                for bit in range(8):
                    if not (h >> bit) & 1:
                        assert table[h] <= table[h | (1 << bit)]


class TestEncoding:
    def test_space_sizes_match_paper(self):
        assert formula_space_size(8, 4, True) == 1 << 15
        assert encoded_bits(8, 4, True) == 15
        # Original ROMBF: N - 1 bits.
        assert encoded_bits(8, 2, False) == 7
        assert encoded_bits(4, 2, False) == 3

    @given(random_trees())
    @settings(max_examples=200)
    def test_roundtrip(self, tree):
        assert FormulaTree.decode(tree.encode()) == tree

    @given(st.integers(min_value=0, max_value=(1 << 15) - 1))
    def test_decode_encode_identity(self, value):
        assert FormulaTree.decode(value).encode() == value

    def test_rombf_roundtrip(self):
        rng = np.random.default_rng(6)
        for _ in range(100):
            tree = random_formula(rng, ops_allowed=ROMBF_OPS, allow_invert=False)
            encoded = tree.encode(ops_allowed=ROMBF_OPS, with_invert=False)
            assert FormulaTree.decode(encoded, 8, ROMBF_OPS, False) == tree

    def test_out_of_range_decode_rejected(self):
        with pytest.raises(ValueError):
            FormulaTree.decode(1 << 15)

    def test_encode_rejects_op_outside_allowed_set(self):
        tree = FormulaTree(ops=(IMPL,) * 7, n_inputs=8)
        with pytest.raises(ValueError):
            tree.encode(ops_allowed=ROMBF_OPS, with_invert=False)

    def test_invert_bit_is_lsb(self):
        tree = FormulaTree(ops=(AND,) * 7, invert=True, n_inputs=8)
        assert tree.encode() & 1 == 1


class TestAllFormulaTable:
    def test_whisper_table_shape(self):
        table = all_formula_table(8, WHISPER_OPS)
        assert table.shape == (4**7, 256)

    def test_rombf_table_shapes(self):
        assert all_formula_table(8, ROMBF_OPS).shape == (128, 256)
        assert all_formula_table(4, ROMBF_OPS).shape == (8, 16)

    def test_rows_match_decoded_formulas(self):
        table = all_formula_table(8, WHISPER_OPS)
        rng = np.random.default_rng(8)
        for index in rng.integers(0, table.shape[0], 40):
            tree = formula_from_index(int(index), False)
            assert np.array_equal(table[int(index)], tree.truth_table())

    def test_rombf_rows_match_decoded_formulas(self):
        table = all_formula_table(4, ROMBF_OPS)
        for index in range(8):
            tree = formula_from_index(index, False, 4, ROMBF_OPS)
            assert np.array_equal(table[index], tree.truth_table())

    def test_cached(self):
        assert all_formula_table(8, WHISPER_OPS) is all_formula_table(8, WHISPER_OPS)


class TestIntrospection:
    def test_expression_rendering(self):
        tree = FormulaTree(ops=(OR, AND, IMPL), n_inputs=4)
        assert tree.to_expression() == "((b0 & b1) | (b2 -> b3))"

    def test_inverted_expression(self):
        tree = FormulaTree(ops=(AND,), invert=True, n_inputs=2)
        assert tree.to_expression() == "~(b0 & b1)"

    def test_dominant_op_pure_tree(self):
        assert FormulaTree(ops=(AND,) * 7, n_inputs=8).dominant_op() == "and"
        assert FormulaTree(ops=(IMPL,) * 7, n_inputs=8).dominant_op() == "impl"

    def test_dominant_op_majority(self):
        ops = (AND, AND, AND, AND, OR, OR, IMPL)
        assert FormulaTree(ops=ops, n_inputs=8).dominant_op() == "and"

    def test_dominant_op_tie_is_others(self):
        ops = (AND, AND, AND, OR, OR, OR, IMPL)
        assert FormulaTree(ops=ops, n_inputs=8).dominant_op() == "others"

    def test_gate_delay_matches_paper(self):
        # n=8: 3 layers x 5 gates + 4 for the final mux = 19 (§III-C).
        assert FormulaTree(ops=(AND,) * 7, n_inputs=8).gate_delay() == 19
        assert FormulaTree(ops=(AND,), n_inputs=2).gate_delay() == 9

    def test_storage_bits(self):
        tree = FormulaTree(ops=(AND,) * 7, n_inputs=8)
        assert tree.storage_bits() == 15
        assert tree.storage_bits(ops_allowed=ROMBF_OPS, with_invert=False) == 7
