"""CLI and EXPERIMENTS.md report generation."""

import pathlib

import pytest

from repro.analysis.report import (
    ORDER,
    PAPER_REFERENCE,
    build_experiments_md,
    load_results,
    summary_table,
)
from repro.cli import build_parser, main


class TestReport:
    def test_every_ordered_slug_has_a_reference(self):
        for slug in ORDER:
            assert slug in PAPER_REFERENCE

    def test_build_from_empty_dir(self, tmp_path):
        text = build_experiments_md(tmp_path)
        assert "No benchmark results found" in text

    def test_build_with_results(self, tmp_path):
        (tmp_path / "fig02_mpki.txt").write_text(
            "== Fig 2: demo ==\nrows\nmeasured: MPKI 3.1 (0.5-7.0)\n"
        )
        (tmp_path / "table1.txt").write_text("== Table I ==\nrows\n")
        out = tmp_path / "EXPERIMENTS.md"
        text = build_experiments_md(tmp_path, out)
        assert out.exists()
        assert "MPKI 3.1" in text
        assert "### table1" in text
        # Presentation order: tables before figures.
        assert text.index("### table1") < text.index("### fig02_mpki")

    def test_summary_table_extracts_measured_lines(self, tmp_path):
        (tmp_path / "fig02_mpki.txt").write_text("x\nmeasured: hello world\n")
        entries = load_results(tmp_path)
        table = summary_table(entries)
        assert "hello world" in table

    def test_ignores_unknown_files(self, tmp_path):
        (tmp_path / "garbage.txt").write_text("nope")
        assert load_results(tmp_path) == []


class TestCli:
    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["apps"])
        assert args.command == "apps"

    def test_unknown_figure_rejected(self, capsys):
        assert main(["figure", "fig99"]) == 2
        assert "unknown figure" in capsys.readouterr().out

    def test_figure_table3(self, capsys):
        assert main(["figure", "table3"]) == 0
        out = capsys.readouterr().out
        assert "Whisper design parameters" in out

    def test_validate_command(self, capsys):
        assert main(["validate", "kafka", "--events", "12000"]) == 0
        out = capsys.readouterr().out
        assert "history entropy" in out

    def test_report_command(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "table1.txt").write_text("== Table I ==\n")
        output = tmp_path / "EXP.md"
        assert main(["report", "--results", str(results), "--output", str(output)]) == 0
        assert output.exists()

    def test_optimize_command(self, capsys):
        assert main(["optimize", "kafka", "--events", "15000"]) == 0
        out = capsys.readouterr().out
        assert "reduction" in out
