"""Tests for the continuous profiling hint service (``repro.serve``).

Layered like the package: shard contracts and sessions with no socket,
ingestion validation against the real registry programs, drift
detection on the phase-drifting workload, raw-socket edge cases against
a live service (protocol mismatch, abrupt disconnect mid-shard), fault
injection through the supervised search tasks, and the scripted
end-to-end demo — including the publish-determinism invariant: two runs
of the same schedule produce byte-identical summaries and version ids.
"""

import json
import socket
import struct
import time

import numpy as np
import pytest

from repro import obs, wire
from repro.orchestrator import faults
from repro.serve import (
    BadShard,
    HintService,
    RefreshEngine,
    RollingProfileStore,
    ServeClient,
    SessionExpired,
    SessionTable,
    ShardIngestor,
    UnknownApp,
    pack_shard_blob,
    run_demo,
    unpack_shard_blob,
)
from repro.serve.contracts import SERVE_PROTOCOL_VERSION
from repro.workloads.drifting import generate_drifting_trace
from repro.workloads.generator import get_program
from repro.workloads.registry import get_spec
from repro.core.whisper import WhisperConfig

APP = "clang"

#: One shared small-but-drift-detectable demo schedule (see
#: TestEndToEnd for why these numbers).
DEMO_KW = dict(
    app=APP,
    n_clients=2,
    events_per_phase=8000,
    shard_events=1000,
    max_candidates=16,
)


@pytest.fixture(autouse=True)
def _no_inherited_faults(monkeypatch):
    monkeypatch.delenv(faults.FAULTS_ENV, raising=False)
    faults.reset()
    yield
    faults.reset()


class TestShardContracts:
    def test_pack_unpack_roundtrip(self):
        ids = np.array([3, 1, 4, 1, 5, 9], dtype=np.int32)
        taken = np.array([True, False, True, True, False, True])
        out_ids, out_taken = unpack_shard_blob(pack_shard_blob(ids, taken))
        assert np.array_equal(out_ids, ids)
        assert np.array_equal(out_taken, taken)

    def test_empty_shard_roundtrip(self):
        ids = np.array([], dtype=np.int32)
        taken = np.array([], dtype=bool)
        out_ids, out_taken = unpack_shard_blob(pack_shard_blob(ids, taken))
        assert len(out_ids) == 0 and len(out_taken) == 0

    def test_truncated_blob_rejected(self):
        ids = np.arange(100, dtype=np.int32)
        taken = np.ones(100, dtype=bool)
        blob = pack_shard_blob(ids, taken)
        with pytest.raises(BadShard):
            unpack_shard_blob(blob[: len(blob) // 2])

    def test_trailing_garbage_rejected(self):
        blob = pack_shard_blob(
            np.arange(10, dtype=np.int32), np.zeros(10, dtype=bool)
        )
        with pytest.raises(BadShard):
            unpack_shard_blob(blob + b"xx")

    def test_oversize_event_count_rejected(self):
        # A forged header claiming 2^21 events must be rejected before
        # any array allocation is attempted from the (short) payload.
        blob = struct.pack("!I", 1 << 21)
        with pytest.raises(BadShard, match="too large"):
            unpack_shard_blob(blob)


class TestSessions:
    def test_lease_expiry(self):
        table = SessionTable(lease_seconds=0.05)
        table.register("c1", APP)
        time.sleep(0.1)
        table.sweep()
        with pytest.raises(SessionExpired):
            table.get("c1")
        assert table.expired_total == 1

    def test_activity_renews_lease(self):
        table = SessionTable(lease_seconds=0.2)
        table.register("c1", APP)
        for _ in range(3):
            time.sleep(0.08)
            table.get("c1")  # touches
        assert table.get("c1").client_id == "c1"

    def test_reconnect_replaces_session(self):
        table = SessionTable(lease_seconds=10.0)
        table.register("c1", APP)
        table.get("c1").next_seq = 7
        table.register("c1", APP)  # reconnect: fresh sequence space
        assert table.get("c1").next_seq == 0

    def test_unknown_client_is_expired(self):
        table = SessionTable(lease_seconds=10.0)
        with pytest.raises(SessionExpired):
            table.get("never-said-hello")


def _ingestor(**store_kwargs):
    profiles = RollingProfileStore(**store_kwargs)
    return profiles, ShardIngestor(
        profiles, lambda app: get_program(get_spec(app))
    )


class TestIngest:
    def _shard(self, n=50):
        program = get_program(get_spec(APP))
        rng = np.random.default_rng(7)
        ids = rng.integers(
            0, len(program.block_sizes), size=n
        ).astype(np.int32)
        return pack_shard_blob(ids, np.ones(n, dtype=bool))

    def test_in_order_shards_accumulate(self):
        profiles, ingestor = _ingestor()
        table = SessionTable(10.0)
        session = table.register("c1", APP)
        assert ingestor.ingest(session, 0, self._shard()) == 50
        assert ingestor.ingest(session, 1, self._shard()) == 50
        assert profiles.get(APP).events_total == 100
        assert session.next_seq == 2

    def test_out_of_order_shard_rejected_and_counted(self):
        profiles, ingestor = _ingestor()
        session = SessionTable(10.0).register("c1", APP)
        ingestor.ingest(session, 0, self._shard())
        with pytest.raises(BadShard, match="out-of-order"):
            ingestor.ingest(session, 5, self._shard())
        assert ingestor.shards_rejected == 1
        assert profiles.get(APP).events_total == 50  # nothing applied

    def test_block_out_of_range_rejected(self):
        profiles, ingestor = _ingestor()
        session = SessionTable(10.0).register("c1", APP)
        blob = pack_shard_blob(
            np.array([10 ** 6], dtype=np.int32), np.array([True])
        )
        with pytest.raises(BadShard, match="out of range"):
            ingestor.ingest(session, 0, blob)
        assert profiles.get(APP) is None  # rejected before ensure_app

    def test_unknown_app_is_typed(self):
        _, ingestor = _ingestor()
        with pytest.raises(UnknownApp):
            ingestor.program_for("no-such-app")


class TestDriftDetection:
    def test_rotated_branches_flagged_after_reference_pin(self):
        spec = get_spec(APP)
        program = get_program(spec)
        drifting = generate_drifting_trace(
            spec, input_id=0, n_events=16000, n_phases=2, drift_fraction=0.25
        )
        profiles = RollingProfileStore(
            buffer_events=16000, window_events=8000,
            drift_threshold=0.20, min_executions=32,
        )
        profile = profiles.ensure_app(APP, program)
        phase0 = drifting.phase_slice(0)
        profile.ingest(phase0.block_ids, phase0.taken)
        # No reference pinned yet: nothing can be called drifted.
        assert profiles.drifted_branches(APP) == []
        profile.pin_reference(8000)
        phase1 = drifting.phase_slice(1)
        profile.ingest(phase1.block_ids, phase1.taken)
        drifted = profiles.drifted_branches(APP)
        assert drifted, "rotating hot branches must be detectable"
        # Everything flagged really rotated: the phase streams replay
        # the same blocks, so undrifted rates are stable.
        assert set(drifted) <= set(drifting.rotated_pcs[1])

    def test_no_drift_without_rotation(self):
        spec = get_spec(APP)
        program = get_program(spec)
        drifting = generate_drifting_trace(
            spec, input_id=0, n_events=16000, n_phases=2, drift_fraction=0.0
        )
        profiles = RollingProfileStore(
            buffer_events=16000, window_events=8000,
            drift_threshold=0.20, min_executions=32,
        )
        profile = profiles.ensure_app(APP, program)
        phase0 = drifting.phase_slice(0)
        profile.ingest(phase0.block_ids, phase0.taken)
        profile.pin_reference(8000)
        phase1 = drifting.phase_slice(1)
        profile.ingest(phase1.block_ids, phase1.taken)
        assert profiles.drifted_branches(APP) == []


class TestServiceWire:
    """Raw-socket edge cases against a live service."""

    @pytest.fixture()
    def service(self):
        with HintService() as service:
            yield service

    def _hello(self, sock, client="raw", app=APP,
               protocol=SERVE_PROTOCOL_VERSION):
        reply, _ = wire.request(
            sock,
            {"op": "hello", "client": client, "app": app,
             "protocol": protocol},
        )
        return reply

    def test_protocol_mismatch_refused(self, service):
        sock = wire.connect(service.address)
        try:
            reply = self._hello(sock, protocol=99)
            assert reply["error"] == "bad-shard"
            assert "mismatch" in reply["detail"]
        finally:
            sock.close()

    def test_unknown_app_refused_at_hello(self, service):
        sock = wire.connect(service.address)
        try:
            reply = self._hello(sock, app="no-such-app")
            assert reply["error"] == "unknown-app"
        finally:
            sock.close()

    def test_shard_without_hello_is_session_expired(self, service):
        sock = wire.connect(service.address)
        try:
            reply, _ = wire.request(
                sock, {"op": "shard", "client": "ghost", "seq": 0}, b""
            )
            assert reply["error"] == "session-expired"
        finally:
            sock.close()

    def test_abrupt_disconnect_mid_shard_is_harmless(self, service):
        # A client dies after sending only part of a shard frame: the
        # torn frame must never be applied, and the service must keep
        # answering other clients.
        sock = wire.connect(service.address)
        self._hello(sock, client="dying")
        blob = pack_shard_blob(
            np.zeros(1000, dtype=np.int32), np.ones(1000, dtype=bool)
        )
        body = json.dumps(
            {"op": "shard", "client": "dying", "seq": 0}
        ).encode()
        frame = struct.pack("!II", len(body), len(blob)) + body + blob
        sock.sendall(frame[: len(frame) // 2])
        sock.close()
        time.sleep(0.2)  # let the serving thread observe the tear
        assert service.ingestor.shards_accepted == 0
        status = ServeClient(service.address, "probe").status()
        assert status["ok"]
        assert status["ingest"]["shards_accepted"] == 0

    def test_oversize_shard_rejected_not_fatal(self, service):
        sock = wire.connect(service.address)
        try:
            self._hello(sock, client="bulk")
            reply, _ = wire.request(
                sock,
                {"op": "shard", "client": "bulk", "seq": 0},
                struct.pack("!I", 1 << 21),
            )
            assert reply["error"] == "bad-shard"
            # Same connection still usable after the typed rejection.
            reply, _ = wire.request(sock, {"op": "status"})
            assert reply["ok"]
        finally:
            sock.close()


class TestChaosSearch:
    def test_injected_search_crash_recovers_via_retries(self, monkeypatch):
        # A crashed per-branch search task must be retried by the
        # supervised scheduler, not take the refresh (or service) down.
        monkeypatch.setenv(
            faults.FAULTS_ENV, f"crash_task:match=search:{APP}:*"
        )
        faults.reset()
        spec = get_spec(APP)
        trace = generate_drifting_trace(
            spec, input_id=0, n_events=8000, n_phases=1, drift_fraction=0.0
        ).trace
        engine = RefreshEngine(config=WhisperConfig(max_candidates=4))
        outcome = engine.bootstrap(APP, trace)
        assert outcome.searched_pcs
        retried = [
            r for r in outcome.search_task_records if r.attempts > 1
        ]
        assert retried, "the injected crash must have forced a retry"
        assert all(
            r.status == "done" for r in outcome.search_task_records
        )


class TestEndToEnd:
    """The scripted demo: drift -> scoped re-search -> publish -> replay.

    The schedule is small (two clients, 8k events/phase) but chosen so
    the drift is *detectable*: the rotated hot branches execute well
    over the detector's min_executions within one phase-long window.
    """

    @pytest.fixture(scope="class")
    def demo(self):
        recorder = obs.configure(True)
        summary = run_demo(**DEMO_KW)
        counters = recorder.counters()
        obs.configure_from_env()
        return summary, counters

    def test_bootstrap_publishes(self, demo):
        summary, _ = demo
        assert summary["bootstrap_version"]
        assert summary["bootstrap_hints"] > 0

    def test_drift_detected_and_search_scoped(self, demo):
        summary, _ = demo
        assert summary["drifted"], "rotated branches must be flagged"
        assert set(summary["drifted"]) <= set(summary["rotated_branches"])
        # The tentpole invariant: re-search runs for drifted branches
        # only, never the whole candidate set.
        assert summary["searched"]
        assert set(summary["searched"]) <= set(summary["drifted"])

    def test_fresh_version_published_and_served(self, demo):
        summary, _ = demo
        assert summary["published_after_drift"]
        assert summary["refreshed_version"] != summary["bootstrap_version"]
        assert summary["served_version"] == summary["refreshed_version"]

    def test_fresh_hints_beat_stale_on_post_drift_traffic(self, demo):
        summary, _ = demo
        assert summary["stale_mpki"] > summary["fresh_mpki"]
        assert summary["staleness_mpki"] > 0

    def test_freshness_counter_tracks_ingest_since_publish(self, demo):
        summary, _ = demo
        assert summary["freshness_before_refresh"] == (
            DEMO_KW["events_per_phase"]
        )

    def test_obs_counters_surface_the_loop(self, demo):
        summary, counters = demo
        assert counters["serve.ingest.shards"] == 16  # 2 phases x 8 shards
        assert counters["serve.ingest.events"] == 16000
        assert counters["serve.drift.flagged"] == len(summary["drifted"])
        # Bootstrap searches every candidate (>= the hints it accepts);
        # the incremental pass adds exactly the drift-scoped searches.
        assert counters["serve.refresh.searched"] >= (
            summary["bootstrap_hints"] + len(summary["searched"])
        )
        assert counters["serve.publish.versions"] == 2
        assert counters["serve.sessions.opened"] >= 2 * DEMO_KW["n_clients"]

    def test_demo_is_deterministic(self, demo, tmp_path):
        summary, _ = demo
        rerun = run_demo(**DEMO_KW, out=tmp_path / "rerun.json")
        assert rerun == summary
        on_disk = json.loads((tmp_path / "rerun.json").read_text())
        assert on_disk == summary
