"""The observability layer: recording, merging, reporting, and the
run-all integration.

The integration tests are the acceptance criteria of the subsystem: a
small orchestrated run must leave one well-formed JSONL trace whose
stage rows account for the run's wall clock, and the embedded manifest
summary must agree with the trace file.
"""

import json

import pytest

from repro import obs
from repro.analysis.ascii_chart import gantt
from repro.obs.recorder import MAX_EVENTS, Recorder
from repro.obs.report import (
    critical_path,
    critical_path_lines,
    summarize,
    summary_lines,
    timeline_lines,
)
from repro.obs.trace import (
    aggregate_counters,
    build_tree,
    format_tree,
    merge_events,
    read_events,
    write_events,
)

EVENTS = 2_500


@pytest.fixture()
def fresh_recorder():
    """An enabled, empty recorder for the test; restores env behaviour."""
    rec = obs.configure(enabled=True)
    yield rec
    obs.configure_from_env()


class TestRecorder:
    def test_span_records_timing_fields(self, fresh_recorder):
        with obs.span("work", app="mysql"):
            pass
        (event,) = obs.drain()
        assert event["type"] == "span"
        assert event["name"] == "work"
        assert event["attrs"] == {"app": "mysql"}
        assert event["wall"] >= 0.0
        assert event["cpu"] >= 0.0
        assert event["start"] > 0  # epoch-anchored
        assert event["span_id"].startswith(f"{event['pid']}:")

    def test_span_nesting_via_parent_ids(self, fresh_recorder):
        with obs.span("outer"):
            with obs.span("inner"):
                pass
            with obs.span("inner2"):
                pass
        events = obs.drain()
        roots = build_tree(events)
        assert [r.name for r in roots] == ["outer"]
        assert sorted(c.name for c in roots[0].children) == ["inner", "inner2"]
        # Children closed before the parent, so they appear first in the
        # stream but still link to it.
        outer = next(e for e in events if e["name"] == "outer")
        assert all(
            e["parent_id"] == outer["span_id"]
            for e in events
            if e["name"].startswith("inner")
        )

    def test_span_records_exceptions(self, fresh_recorder):
        with pytest.raises(RuntimeError):
            with obs.span("doomed"):
                raise RuntimeError("boom")
        (event,) = obs.drain()
        assert event["status"] == "error"
        assert event["error"] == "RuntimeError"

    def test_counters_materialise_at_drain(self, fresh_recorder):
        obs.add("replay.events", 100)
        obs.add("replay.events", 50)
        obs.add("replay.runs")
        obs.gauge("queue.depth", 7)
        events = obs.drain()
        counters = {e["name"]: e["value"] for e in events if e["type"] == "counter"}
        assert counters == {"replay.events": 150, "replay.runs": 1}
        gauges = {e["name"]: e["value"] for e in events if e["type"] == "gauge"}
        assert gauges == {"queue.depth": 7}
        assert obs.drain() == []  # drain resets

    def test_disabled_recorder_is_noop(self):
        obs.configure(enabled=False)
        try:
            assert not obs.enabled()
            with obs.span("invisible", app="x"):
                obs.add("invisible.counter")
                obs.event("cache", outcome="hit")
            assert obs.drain() == []
        finally:
            obs.configure_from_env()

    def test_off_env_values(self, monkeypatch):
        from repro.obs.recorder import enabled_from_env

        for value in ("off", "0", "false", "no", "OFF"):
            monkeypatch.setenv(obs.OBS_ENV, value)
            assert not enabled_from_env()
        for value in ("", "on", "1"):
            monkeypatch.setenv(obs.OBS_ENV, value)
            assert enabled_from_env()

    def test_overflow_drops_and_reports(self):
        rec = Recorder(max_events=3)
        for i in range(5):
            rec.event("task", n=i)
        events = rec.drain()
        assert len([e for e in events if e["type"] == "task"]) == 3
        (dropped,) = [e for e in events if e["type"] == "dropped"]
        assert dropped["count"] == 2
        assert MAX_EVENTS >= 100_000  # the real cap stays generous

    def test_fork_detection_resets_recorder(self, fresh_recorder, monkeypatch):
        import sys

        # ``repro.obs.recorder`` the module is shadowed by the function
        # of the same name on the package, so go through sys.modules.
        recorder_module = sys.modules["repro.obs.recorder"]
        obs.add("parent.counter")
        monkeypatch.setattr(recorder_module.os, "getpid", lambda: -1)
        child = obs.recorder()
        assert child is not fresh_recorder
        assert child.drain() == []  # no inherited events


class TestTraceFiles:
    def test_write_read_roundtrip(self, tmp_path, fresh_recorder):
        with obs.span("a"):
            pass
        obs.add("c", 2)
        events = obs.drain()
        path = write_events(tmp_path / "sub" / "trace.jsonl", events)
        assert read_events(path) == events

    def test_malformed_line_raises_with_lineno(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"type":"span"}\nnot json\n')
        with pytest.raises(ValueError, match="trace.jsonl:2"):
            read_events(path)

    def test_merge_orders_spans_by_epoch_start(self):
        a = [{"type": "span", "name": "late", "start": 2.0}]
        b = [
            {"type": "span", "name": "early", "start": 1.0},
            {"type": "counter", "name": "c", "value": 1},
        ]
        merged = merge_events(a, b)
        assert [e["name"] for e in merged] == ["early", "late", "c"]

    def test_counter_aggregation_across_processes(self):
        a = [{"type": "counter", "name": "cache.hits", "value": 3, "pid": 1}]
        b = [
            {"type": "counter", "name": "cache.hits", "value": 4, "pid": 2},
            {"type": "counter", "name": "cache.misses", "value": 1, "pid": 2},
        ]
        totals = aggregate_counters(merge_events(a, b))
        assert totals == {"cache.hits": 7, "cache.misses": 1}

    def test_orphaned_span_degrades_to_root(self):
        events = [
            {"type": "span", "name": "child", "span_id": "1:2",
             "parent_id": "1:1", "start": 1.0, "wall": 0.1},
        ]
        roots = build_tree(events)
        assert [r.name for r in roots] == ["child"]

    def test_format_tree_hides_fast_spans(self, fresh_recorder):
        with obs.span("slow"):
            with obs.span("fast"):
                pass
        text = format_tree(obs.drain(), min_wall=10.0)
        assert "slow" not in text  # the root itself is under 10 s
        assert "1 spans <" in text


class TestReports:
    @staticmethod
    def _task(name, kind, seconds, started, deps=(), status="done", cpu=0.0):
        return {
            "type": "task", "name": name, "kind": kind, "app": "",
            "status": status, "seconds": seconds, "cpu": cpu,
            "ready": started, "started": started,
            "finished": started + seconds, "worker": 1, "deps": list(deps),
        }

    def test_summarize_from_task_events(self):
        events = [
            {"type": "span", "name": "run", "span_id": "1:1", "parent_id": "",
             "start": 100.0, "wall": 3.0, "cpu": 2.0, "pid": 1,
             "attrs": {"jobs": 2}},
            self._task("trace:a", "trace", 1.0, 0.0, cpu=0.9),
            self._task("trace:b", "trace", 0.5, 0.0, cpu=0.4),
            self._task("figure:fig02", "figure", 0.25, 1.0, deps=["trace:a"]),
            self._task("figure:fig13", "figure", 0.25, 1.0, status="failed"),
            {"type": "counter", "name": "cache.hits", "value": 9, "pid": 1},
            {"type": "counter", "name": "cache.misses", "value": 1, "pid": 1},
        ]
        summary = summarize(events)
        assert summary.wall_seconds == 3.0
        assert summary.jobs == 2
        assert summary.stages["trace"].count == 2
        assert summary.stages["trace"].wall == pytest.approx(1.5)
        assert summary.stages["trace"].cpu == pytest.approx(1.3)
        # The failed figure contributes a row but no stage time.
        assert summary.stages["figure"].count == 1
        assert dict((f, s) for f, _, s in summary.figures) == {
            "fig02": "done", "fig13": "failed",
        }
        assert summary.cache_hit_rate == pytest.approx(0.9)
        assert 0.0 < summary.coverage <= 1.0
        d = summary.as_dict()
        assert json.dumps(d)  # JSON-ready for the manifest
        assert d["coverage"] == pytest.approx(summary.coverage, abs=1e-4)

    def test_summarize_falls_back_to_spans(self, fresh_recorder):
        with obs.span("replay", app="mysql"):
            pass
        summary = summarize(obs.drain())
        assert "replay" in summary.stages
        assert summary.stages["replay"].count == 1

    def test_summary_lines_text_and_markdown(self):
        events = [self._task("trace:a", "trace", 1.0, 0.0)]
        text = "\n".join(summary_lines(summarize(events)))
        assert "trace" in text and "stage" in text
        md = "\n".join(summary_lines(summarize(events), markdown=True))
        assert md.startswith("| stage |")
        assert "| trace | 1 |" in md

    def test_timeline_renders_tasks(self):
        events = [
            self._task("trace:a", "trace", 1.0, 0.0),
            self._task("baseline:a", "baseline", 1.0, 1.0),
        ]
        lines = timeline_lines(events, width=20)
        assert len(lines) >= 3  # two bars + axis
        assert "trace:a" in lines[0]

    def test_critical_path_follows_longest_chain(self):
        events = [
            self._task("trace:a", "trace", 1.0, 0.0),
            self._task("trace:b", "trace", 3.0, 0.0),
            self._task("baseline:a", "baseline", 1.0, 1.0, deps=["trace:a"]),
            self._task("figure:f", "figure", 0.5, 4.0,
                       deps=["baseline:a", "trace:b"]),
        ]
        chain = [t["name"] for t in critical_path(events)]
        assert chain == ["trace:b", "figure:f"]
        lines = critical_path_lines(events)
        assert "2 tasks" in lines[0]

    def test_critical_path_empty_without_tasks(self):
        assert critical_path([]) == []


class TestGantt:
    def test_bars_scale_and_label(self):
        chart = gantt([("a", 0.0, 1.0), ("b", 1.0, 2.0)], width=20)
        lines = chart.splitlines()
        assert lines[0].startswith("a ")
        bar_a = lines[0].split("|")[1]
        bar_b = lines[1].split("|")[1]
        # Non-overlapping intervals paint disjoint halves.
        assert bar_a.rstrip() and bar_b.lstrip()
        assert bar_a.index("#") < bar_b.index("#")
        assert "2.0" in lines[-1]  # axis shows the total span

    def test_empty_and_narrow(self):
        assert gantt([]) == "(no intervals)"
        with pytest.raises(ValueError):
            gantt([("a", 0.0, 1.0)], width=4)


class TestRunAllIntegration:
    @pytest.fixture(scope="class")
    def run(self, tmp_path_factory):
        from repro.orchestrator.runall import run_all

        obs.configure(enabled=True)
        results = tmp_path_factory.mktemp("results")
        manifest, texts = run_all(
            figures=["fig02"],
            jobs=2,
            n_events=EVENTS,
            cache_dir=str(tmp_path_factory.mktemp("cache")),
            results_dir=str(results),
        )
        yield manifest, texts, results
        obs.configure_from_env()

    def test_trace_file_well_formed(self, run):
        _, _, results = run
        events = read_events(results / "trace.jsonl")
        assert events, "run-all must leave a trace"
        spans = [e for e in events if e.get("type") == "span"]
        tasks = [e for e in events if e.get("type") == "task"]
        assert any(s["name"] == "run" for s in spans)
        assert any(s["name"] == "replay" for s in spans)
        assert {t["kind"] for t in tasks} == {"trace", "baseline", "figure"}
        # Worker events really crossed the process boundary.
        assert len({e.get("pid") for e in spans}) > 1

    def test_stage_walls_account_for_run(self, run):
        manifest, _, results = run
        summary = summarize(read_events(results / "trace.jsonl"))
        assert summary.coverage >= 0.80, (
            f"stage spans explain only {100 * summary.coverage:.0f}% "
            f"of the worker-time budget"
        )
        # Busy time can never exceed wall * workers.
        assert summary.busy_seconds <= summary.wall_seconds * summary.jobs * 1.05
        for stats in summary.stages.values():
            assert stats.cpu <= stats.wall * 1.5 + 0.1

    def test_manifest_embeds_trace_summary(self, run):
        manifest, _, results = run
        embedded = manifest.trace_summary
        assert embedded["jobs"] == 2
        assert set(embedded["stages"]) == {"trace", "baseline", "figure"}
        assert embedded["counters"]["replay.runs"] > 0
        fresh = summarize(read_events(results / "trace.jsonl")).as_dict()
        assert embedded == fresh

    def test_manifest_roundtrips_summary(self, run, tmp_path):
        from repro.orchestrator.manifest import RunManifest

        manifest, _, _ = run
        manifest.save(tmp_path / "manifest.json")
        loaded = RunManifest.load(tmp_path / "manifest.json")
        assert loaded.trace_summary == manifest.trace_summary

    def test_trace_cli_views(self, run, capsys):
        from repro.cli import main

        _, _, results = run
        trace_arg = ["--trace", str(results / "trace.jsonl")]
        assert main(["trace", "summarize", *trace_arg]) == 0
        assert "stage" in capsys.readouterr().out
        assert main(["trace", "summarize", "--markdown", *trace_arg]) == 0
        assert "| stage |" in capsys.readouterr().out
        assert main(["trace", "timeline", *trace_arg]) == 0
        assert "figure:fig02" in capsys.readouterr().out
        assert main(["trace", "critical-path", *trace_arg]) == 0
        assert "critical path:" in capsys.readouterr().out
        assert main(["trace", "tree", *trace_arg]) == 0
        assert "run" in capsys.readouterr().out

    def test_trace_cli_missing_file(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["trace", "summarize", "--trace", str(tmp_path / "x.jsonl")]) == 2

    def test_obs_off_run_leaves_no_trace(self, tmp_path):
        from repro.orchestrator.runall import run_all

        obs.configure(enabled=False)
        try:
            manifest, texts = run_all(
                figures=["table1"],
                jobs=1,
                n_events=EVENTS,
                cache_dir=None,
                results_dir=str(tmp_path),
            )
        finally:
            obs.configure_from_env()
        assert not (tmp_path / "trace.jsonl").exists()
        assert manifest.trace_summary == {}
        assert "table1" in texts
