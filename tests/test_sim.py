"""Timing simulator: caches, BTB, cycle accounting, FDIP behaviour."""

import pytest

from repro.bpu.runner import simulate
from repro.bpu.scaling import scaled_tage_sc_l
from repro.bpu.simple import StaticTakenPredictor
from repro.sim import SetAssociativeCache, BranchTargetBuffer, SimConfig, simulate_timing


class TestSetAssociativeCache:
    def test_first_access_misses_then_hits(self):
        cache = SetAssociativeCache(1, 2)  # 1 KB, 2-way, 64B lines: 8 sets
        assert cache.access(100) is False
        assert cache.access(100) is True

    def test_lru_within_set(self):
        cache = SetAssociativeCache(1, 2)
        n_sets = cache.n_sets
        a, b, c = 0, n_sets, 2 * n_sets  # same set
        cache.access(a)
        cache.access(b)
        cache.access(a)  # refresh a
        cache.access(c)  # evicts b
        assert cache.probe(a) and cache.probe(c)
        assert not cache.probe(b)

    def test_distinct_sets_do_not_conflict(self):
        cache = SetAssociativeCache(1, 2)
        for line in range(cache.n_sets):
            cache.access(line)
        assert all(cache.probe(line) for line in range(cache.n_sets))

    def test_stats(self):
        cache = SetAssociativeCache(1, 2)
        cache.access(1)
        cache.access(1)
        assert cache.hits == 1 and cache.misses == 1

    def test_reset(self):
        cache = SetAssociativeCache(1, 2)
        cache.access(1)
        cache.reset()
        assert not cache.probe(1)
        assert cache.misses == 0


class TestBtb:
    def test_allocation_and_hit(self):
        btb = BranchTargetBuffer(64, 4)
        assert btb.access(0x1000) is False
        assert btb.access(0x1000) is True

    def test_capacity_eviction(self):
        btb = BranchTargetBuffer(4, 1)  # 4 sets, direct-mapped
        assert btb.access(0x0) is False
        assert btb.access(0x0 + 4 * 4) is False  # same set (key = pc>>2)
        assert btb.access(0x0) is False  # was evicted


class TestTiming:
    def test_ideal_faster_than_baseline(self, tiny_trace, tiny_baseline):
        base = simulate_timing(tiny_trace, tiny_baseline, name="base")
        ideal = simulate_timing(tiny_trace, None, name="ideal")
        assert ideal.cycles < base.cycles
        assert ideal.speedup_over(base) > 0
        assert ideal.squash_cycles == 0

    def test_cycles_at_least_width_limited(self, tiny_trace):
        result = simulate_timing(tiny_trace, None, perfect_icache=True)
        config = SimConfig()
        assert result.cycles >= tiny_trace.n_instructions / config.fetch_width

    def test_perfect_icache_removes_frontend_stalls(self, tiny_trace, tiny_baseline):
        result = simulate_timing(tiny_trace, tiny_baseline, perfect_icache=True)
        assert result.icache_stall_cycles == 0
        assert result.icache_misses == 0

    def test_fdip_hides_misses(self, tiny_trace, tiny_baseline):
        with_fdip = simulate_timing(tiny_trace, tiny_baseline, fdip=True)
        without = simulate_timing(tiny_trace, tiny_baseline, fdip=False)
        assert with_fdip.icache_stall_cycles < without.icache_stall_cycles
        assert with_fdip.icache_misses_covered > 0

    def test_squash_cycles_proportional_to_mispredictions(self, tiny_trace, tiny_baseline):
        config = SimConfig()
        result = simulate_timing(tiny_trace, tiny_baseline, config=config)
        assert result.mispredictions == tiny_baseline.with_warmup(0.0).mispredictions
        assert result.squash_cycles == result.mispredictions * config.mispredict_penalty

    def test_hint_instructions_charged(self, tiny_trace, tiny_whisper):
        _, _, placement, _ = tiny_whisper
        plain = simulate_timing(tiny_trace, None)
        hinted = simulate_timing(tiny_trace, None, placement=placement)
        assert hinted.hint_instructions == placement.dynamic_instructions_added(tiny_trace)
        assert hinted.cycles > plain.cycles
        assert hinted.instructions == plain.instructions  # useful work unchanged

    def test_whisper_speedup_end_to_end(self, tiny_trace, tiny_baseline, tiny_whisper):
        _, _, placement, runtime = tiny_whisper
        optimized = simulate(tiny_trace, scaled_tage_sc_l(64), runtime=runtime)
        base_timing = simulate_timing(tiny_trace, tiny_baseline, name="base")
        whisper_timing = simulate_timing(
            tiny_trace, optimized, placement=placement, name="whisper"
        )
        assert whisper_timing.speedup_over(base_timing) > 0

    def test_stall_breakdown_sums_to_cycles(self, tiny_trace, tiny_baseline):
        result = simulate_timing(tiny_trace, tiny_baseline)
        parts = result.stall_breakdown()
        assert sum(parts.values()) == pytest.approx(result.cycles)

    def test_worse_prediction_means_fewer_covered_misses(self, tiny_trace, tiny_baseline):
        bad = simulate(tiny_trace, StaticTakenPredictor(True))
        good_timing = simulate_timing(tiny_trace, tiny_baseline)
        bad_timing = simulate_timing(tiny_trace, bad)
        # More squashes reset FDIP run-ahead more often.
        assert bad_timing.icache_misses_covered <= good_timing.icache_misses_covered
        assert bad_timing.cycles > good_timing.cycles
