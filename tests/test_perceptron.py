"""Perceptron reference predictor."""

import numpy as np
import pytest

from repro.bpu.perceptron import PerceptronPredictor
from repro.bpu.simple import BimodalPredictor


def drive(predictor, stream):
    wrong = 0
    for pc, taken in stream:
        if predictor.predict(pc) != taken:
            wrong += 1
        predictor.update(pc, taken)
    return 1.0 - wrong / len(stream)


class TestPerceptron:
    def test_learns_biased_branch(self):
        stream = [(0x100, True)] * 2000
        assert drive(PerceptronPredictor(), stream) > 0.99

    def test_learns_alternation(self):
        stream = [(0x100, bool(i % 2)) for i in range(4000)]
        assert drive(PerceptronPredictor(), stream) > 0.95

    def test_learns_linear_history_correlation(self):
        # Outcome = direction of the branch 3 steps ago: linearly
        # separable, a perceptron specialty.
        rng = np.random.default_rng(0)
        outcomes = rng.integers(0, 2, 6000).astype(bool)
        stream = []
        for i in range(3, 6000):
            pc = 0x200 if i % 2 == 0 else 0x300
            taken = bool(outcomes[i - 3]) if pc == 0x200 else bool(outcomes[i])
            stream.append((pc, taken))
        accuracy = drive(PerceptronPredictor(history_length=8), stream)
        assert accuracy > 0.7  # bimodal would sit near 0.5

    def test_beats_bimodal_on_correlated_stream(self):
        stream = [(0x100, bool((i // 2) % 2)) for i in range(4000)]
        assert drive(PerceptronPredictor(), stream) > drive(BimodalPredictor(), stream)

    def test_threshold_follows_paper_formula(self):
        predictor = PerceptronPredictor(history_length=24)
        assert predictor.theta == int(1.93 * 24 + 14)

    def test_weights_saturate(self):
        predictor = PerceptronPredictor(n_perceptrons=4, history_length=4)
        for _ in range(2000):
            predictor.predict(0x10)
            predictor.update(0x10, True)
        weights = predictor._weights[predictor._index(0x10)]
        assert all(-128 <= w <= 127 for w in weights)

    def test_reset(self):
        predictor = PerceptronPredictor()
        for _ in range(50):
            predictor.update(0x10, False)
        predictor.reset()
        assert predictor.predict(0x10) is True  # zero weights -> taken

    def test_storage_accounting(self):
        predictor = PerceptronPredictor(n_perceptrons=512, history_length=24)
        assert predictor.storage_bits == 512 * 25 * 8

    def test_validation(self):
        with pytest.raises(ValueError):
            PerceptronPredictor(history_length=0)
        with pytest.raises(ValueError):
            PerceptronPredictor(n_perceptrons=0)

    def test_cold_update_path(self):
        predictor = PerceptronPredictor()
        predictor.update(0x999, True)  # update without predict
        assert isinstance(predictor.predict(0x999), bool)
