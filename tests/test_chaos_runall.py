"""Chaos harness: ``run-all`` must survive every injected fault class.

Each scenario drives a real (small-scale) ``run_all`` under a seeded
``REPRO_FAULTS`` plan and checks the orchestrator's three invariants:

1. the run recovers (retries / quarantine / resume) or fails loudly —
   it never hangs and never silently drops work;
2. the committed artifact store stays clean — a post-run checksum scan
   (:meth:`ArtifactStore.verify`) finds zero corrupt files;
3. recovered and resumed runs reproduce the fault-free figure text
   byte-for-byte.

The interrupt scenario goes through the CLI in a subprocess so a real
SIGINT exercises the drain + journal + ``--resume`` path end to end.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.orchestrator import faults
from repro.orchestrator.journal import load_journal
from repro.orchestrator.runall import run_all
from repro.orchestrator.scheduler import CANCELLED, DONE, FAILED
from repro.orchestrator.store import ArtifactStore

EVENTS = 2_500
FIGURES = ["fig02"]
JOBS = 2


@pytest.fixture(autouse=True)
def clean_fault_env(monkeypatch):
    monkeypatch.delenv(faults.FAULTS_ENV, raising=False)
    monkeypatch.delenv(faults.FAULTS_STATE_ENV, raising=False)
    faults.reset()
    yield
    faults.reset()


@pytest.fixture(scope="module")
def baseline_text(tmp_path_factory):
    """The fault-free figure text every recovered run must reproduce."""
    cache = tmp_path_factory.mktemp("baseline-cache")
    os.environ.pop(faults.FAULTS_ENV, None)
    faults.reset()
    _, texts = run_all(
        figures=FIGURES, jobs=JOBS, n_events=EVENTS,
        cache_dir=str(cache), results_dir=None,
    )
    return texts["fig02"]


def _assert_store_clean(cache_dir):
    """Invariant 2: no corrupt committed artifact survives a run."""
    report = ArtifactStore(cache_dir).verify(quarantine_bad=False)
    assert report["corrupt"] == [], report
    assert report["scanned"] > 0


class TestCrashRecovery:
    def test_worker_crash_is_retried_and_run_completes(
        self, tmp_path, monkeypatch, baseline_text
    ):
        monkeypatch.setenv(faults.FAULTS_ENV, "crash_task:match=baseline:mysql")
        manifest, texts = run_all(
            figures=FIGURES, jobs=JOBS, n_events=EVENTS,
            cache_dir=str(tmp_path / "cache"), results_dir=None, retries=1,
        )
        assert manifest.counts()[FAILED] == 0
        assert manifest.faults["worker_deaths"] >= 1
        assert manifest.faults["retries"] >= 1
        victim = next(t for t in manifest.tasks if t["name"] == "baseline:mysql")
        assert victim["status"] == DONE and victim["attempts"] == 2
        assert texts["fig02"] == baseline_text
        _assert_store_clean(tmp_path / "cache")


class TestHangRecovery:
    def test_hung_worker_is_terminated_and_retried(
        self, tmp_path, monkeypatch, baseline_text
    ):
        monkeypatch.setenv(
            faults.FAULTS_ENV, "hang_task:match=trace:clang,delay=30"
        )
        manifest, texts = run_all(
            figures=FIGURES, jobs=JOBS, n_events=EVENTS,
            cache_dir=str(tmp_path / "cache"), results_dir=None,
            retries=1, task_timeout=5.0,
        )
        assert manifest.counts()[FAILED] == 0
        assert manifest.faults["timeouts"] >= 1
        victim = next(t for t in manifest.tasks if t["name"] == "trace:clang")
        assert victim["status"] == DONE and victim["timeouts"] == 1
        assert texts["fig02"] == baseline_text
        _assert_store_clean(tmp_path / "cache")


class TestCorruptArtifact:
    def test_corrupt_commit_quarantined_and_rebuilt(
        self, tmp_path, monkeypatch, baseline_text
    ):
        # ``once`` + a state dir: exactly one committed trace file is
        # damaged, run-wide, and the rebuild's re-put is left alone.
        # Traces are read back by the downstream baseline task, so the
        # bad file is guaranteed to cross the read path mid-run.
        monkeypatch.setenv(
            faults.FAULTS_ENV, "corrupt_artifact:match=trace/*,once=1"
        )
        monkeypatch.setenv(faults.FAULTS_STATE_ENV, str(tmp_path / "state"))
        cache = tmp_path / "cache"
        manifest, texts = run_all(
            figures=FIGURES, jobs=JOBS, n_events=EVENTS,
            cache_dir=str(cache), results_dir=None, retries=1,
        )
        assert manifest.counts()[FAILED] == 0
        assert texts["fig02"] == baseline_text
        # The damaged file was caught by the read path and preserved as
        # evidence; the committed namespace holds only verified bytes.
        quarantined = list((cache / "quarantine").rglob("*.npz"))
        assert len(quarantined) == 1
        assert manifest.faults["quarantined"] >= 1
        _assert_store_clean(cache)


class TestFailedWrite:
    def test_aborted_write_leaves_no_partial_file_and_retries(
        self, tmp_path, monkeypatch, baseline_text
    ):
        monkeypatch.setenv(faults.FAULTS_ENV, "fail_write:match=trace/*")
        cache = tmp_path / "cache"
        manifest, texts = run_all(
            figures=FIGURES, jobs=JOBS, n_events=EVENTS,
            cache_dir=str(cache), results_dir=None, retries=1,
        )
        # Every trace task's first attempt died on its first put; the
        # retry (attempt 2, past the rule's ``attempts=1`` gate) wrote
        # cleanly.
        assert manifest.counts()[FAILED] == 0
        assert manifest.faults["retries"] >= 1
        assert texts["fig02"] == baseline_text
        assert not list((cache / "trace").glob("*.tmp"))
        _assert_store_clean(cache)


class TestFailFastAndResume:
    def test_persistent_failure_drains_then_resume_completes(
        self, tmp_path, monkeypatch, baseline_text
    ):
        cache, results = str(tmp_path / "cache"), str(tmp_path / "results")
        monkeypatch.setenv(
            faults.FAULTS_ENV, "crash_task:match=baseline:mysql,attempts=99"
        )
        manifest, _ = run_all(
            figures=FIGURES, jobs=JOBS, n_events=EVENTS,
            cache_dir=cache, results_dir=results,
            retries=1, keep_going=False, run_id="chaos-ff",
        )
        counts = manifest.counts()
        assert counts[FAILED] == 1
        assert counts[CANCELLED] >= 1  # fail-fast drained the rest
        state = load_journal(results, "chaos-ff")
        assert state is not None and state.ended  # end marker written
        assert "baseline:mysql" not in state.completed
        assert state.completed  # the done work is journaled...

        monkeypatch.setenv(faults.FAULTS_ENV, "")
        faults.reset()
        resumed, texts = run_all(
            figures=FIGURES, jobs=JOBS,
            cache_dir=cache, results_dir=results, resume="chaos-ff",
        )
        assert resumed.counts()[FAILED] == 0
        assert resumed.faults["resumed"] == len(state.completed)
        assert not resumed.interrupted
        assert texts["fig02"] == baseline_text  # byte-identical report
        assert load_journal(results, "chaos-ff").sessions == 2
        _assert_store_clean(cache)

    def test_resume_unknown_run_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="journal|resume"):
            run_all(
                figures=FIGURES, n_events=EVENTS,
                cache_dir=str(tmp_path / "c"), results_dir=str(tmp_path / "r"),
                resume="no-such-run",
            )


class TestInterrupt:
    def test_sigint_drains_and_resume_reproduces_report(
        self, tmp_path, baseline_text
    ):
        cache, results = str(tmp_path / "cache"), str(tmp_path / "results")
        env = dict(os.environ)
        env.pop(faults.FAULTS_ENV, None)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (
                os.path.join(os.path.dirname(__file__), "..", "src"),
                env.get("PYTHONPATH", ""),
            ) if p
        )
        # Hold one stage open so the SIGINT lands mid-run regardless of
        # machine speed; the drain must let it finish, cancel the rest,
        # and leave a resumable journal.
        env[faults.FAULTS_ENV] = "hang_task:match=baseline:postgres,delay=6"
        command = [
            sys.executable, "-m", "repro.cli", "run-all",
            "--figures", "fig02", "--jobs", str(JOBS),
            "--events", str(EVENTS),
            "--cache-dir", cache, "--results", results,
            "--run-id", "chaos-int",
        ]
        process = subprocess.Popen(
            command, env=env,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        time.sleep(3.0)
        process.send_signal(signal.SIGINT)
        output, _ = process.communicate(timeout=120)
        assert process.returncode == 130, output
        assert "resume" in output

        state = load_journal(results, "chaos-int")
        assert state is not None and state.completed
        assert len(state.completed) < 25  # genuinely interrupted mid-run

        resume = subprocess.run(
            [sys.executable, "-m", "repro.cli", "run-all",
             "--resume", "chaos-int", "--jobs", str(JOBS),
             "--cache-dir", cache, "--results", results],
            env={k: v for k, v in env.items() if k != faults.FAULTS_ENV},
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            timeout=300,
        )
        assert resume.returncode == 0, resume.stdout
        figure_text = open(os.path.join(results, "fig02_mpki.txt")).read()
        assert figure_text == baseline_text
        _assert_store_clean(cache)
