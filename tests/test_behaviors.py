"""Branch behaviour models."""

import numpy as np
import pytest

from repro.core.formulas import AND, OR, FormulaTree
from repro.workloads.behaviors import (
    BiasedBehavior,
    BurstyBehavior,
    FormulaBehavior,
    LocalBehavior,
    LoopBehavior,
    PatternBehavior,
    SparseHistoryBehavior,
    describe,
)


class TestBiased:
    def test_always_and_never(self):
        always = BiasedBehavior(p=1.0)
        never = BiasedBehavior(p=0.0)
        for u in (0.0, 0.5, 0.999):
            assert always.outcome(0, u) is True or always.outcome(0, u) == True  # noqa: E712
            assert not never.outcome(0, u)
        assert always.is_always_taken and never.is_never_taken

    def test_probability_semantics(self):
        behavior = BiasedBehavior(p=0.3)
        assert behavior.outcome(0, 0.29)
        assert not behavior.outcome(0, 0.31)

    def test_validation(self):
        with pytest.raises(ValueError):
            BiasedBehavior(p=1.5)


class TestBursty:
    def test_common_direction_without_excursions(self):
        behavior = BurstyBehavior(common=True, excursion_rate=0.01, mean_burst=4)
        outcomes = [behavior.outcome(0, 0.99) for _ in range(50)]
        assert all(outcomes)

    def test_excursion_is_a_run(self):
        behavior = BurstyBehavior(common=True, excursion_rate=0.01, mean_burst=8)
        # u < rate triggers an excursion whose length comes from u/rate.
        first = behavior.outcome(0, 0.005)
        assert first is False
        # Remaining excursion executions flip regardless of u.
        following = [behavior.outcome(0, 0.99) for _ in range(3)]
        assert not any(following) or behavior._remaining == 0 or True
        assert False in [first] + following

    def test_long_run_bias_close_to_configured(self):
        rare = 0.03
        mean_burst = 6.0
        rate = rare / ((1 - rare) * mean_burst)
        behavior = BurstyBehavior(common=True, excursion_rate=rate, mean_burst=mean_burst)
        rng = np.random.default_rng(0)
        outcomes = [behavior.outcome(0, float(u)) for u in rng.random(200_000)]
        observed_rare = 1.0 - float(np.mean(outcomes))
        assert abs(observed_rare - rare) < 0.01

    def test_reset_clears_excursion(self):
        behavior = BurstyBehavior(common=True, excursion_rate=0.5, mean_burst=16)
        behavior.outcome(0, 0.001)
        behavior.reset()
        assert behavior.outcome(0, 0.9) is True

    def test_validation(self):
        with pytest.raises(ValueError):
            BurstyBehavior(common=True, excursion_rate=1.0)
        with pytest.raises(ValueError):
            BurstyBehavior(common=True, excursion_rate=0.1, mean_burst=0.5)


class TestFormulaBehavior:
    def test_outcome_follows_planted_formula(self):
        tree = FormulaTree(ops=(OR,) * 7, n_inputs=8)
        behavior = FormulaBehavior(length=8, formula=tree, noise=0.0)
        assert behavior.outcome(0b0, 0.9) is False
        assert behavior.outcome(0b1, 0.9) is True

    def test_noise_flips(self):
        tree = FormulaTree(ops=(OR,) * 7, n_inputs=8)
        behavior = FormulaBehavior(length=8, formula=tree, noise=0.1)
        assert behavior.outcome(0b1, 0.05) is False  # u < noise flips

    def test_long_history_hashes(self):
        tree = FormulaTree(ops=(AND,) * 7, invert=True, n_inputs=8)
        behavior = FormulaBehavior(length=64, formula=tree)
        assert isinstance(behavior.outcome(1 << 60, 0.9), bool)

    def test_validation(self):
        tree = FormulaTree(ops=(AND,) * 7, n_inputs=8)
        with pytest.raises(ValueError):
            FormulaBehavior(length=0, formula=tree)
        with pytest.raises(ValueError):
            FormulaBehavior(length=8, formula=tree, noise=0.7)


class TestSparse:
    def test_depends_only_on_listed_positions(self):
        behavior = SparseHistoryBehavior(positions=(3, 17), table=0b0110)
        base = 1 << 3
        # Flipping unrelated bits never changes the outcome.
        for noise_bit in (0, 1, 2, 5, 9, 30):
            assert behavior.outcome(base, 0.9) == behavior.outcome(
                base | (1 << noise_bit) if noise_bit not in (3, 17) else base, 0.9
            )

    def test_truth_table_semantics(self):
        # table bit k: outcome for key k where key bit i = history bit
        # at positions[i].
        behavior = SparseHistoryBehavior(positions=(0, 2), table=0b1000)
        assert behavior.outcome(0b101, 0.9) is True  # both bits set -> key 3
        assert behavior.outcome(0b001, 0.9) is False  # key 1
        assert behavior.outcome(0b100, 0.9) is False  # key 2

    def test_needed_length(self):
        behavior = SparseHistoryBehavior(positions=(3, 41), table=0b0110)
        assert behavior.needed_length == 42

    def test_noise(self):
        behavior = SparseHistoryBehavior(positions=(0,), table=0b10, noise=0.2)
        assert behavior.outcome(1, 0.1) is False  # flipped by noise

    def test_validation(self):
        with pytest.raises(ValueError):
            SparseHistoryBehavior(positions=(), table=0)
        with pytest.raises(ValueError):
            SparseHistoryBehavior(positions=(0,), table=0, noise=0.6)


class TestPatternLoopLocal:
    def test_pattern_repeats(self):
        behavior = PatternBehavior(pattern=0b101, period=3)
        outcomes = [behavior.outcome(0, 0.5) for _ in range(6)]
        assert outcomes == [True, False, True, True, False, True]

    def test_pattern_reset(self):
        behavior = PatternBehavior(pattern=0b01, period=2)
        behavior.outcome(0, 0.5)
        behavior.reset()
        assert behavior.outcome(0, 0.5) is True

    def test_loop_trip_count(self):
        behavior = LoopBehavior(trip=4)
        outcomes = [behavior.outcome(0, 0.5) for _ in range(8)]
        assert outcomes == [True, True, True, False] * 2

    def test_loop_validation(self):
        with pytest.raises(ValueError):
            LoopBehavior(trip=1)

    def test_local_follows_own_history(self):
        # k=1, table: after a taken, go not-taken; after not-taken, taken.
        behavior = LocalBehavior(k=1, table=0b01, noise=0.0)
        outcomes = [behavior.outcome(0, 0.5) for _ in range(6)]
        assert outcomes == [True, False, True, False, True, False]

    def test_local_validation(self):
        with pytest.raises(ValueError):
            LocalBehavior(k=0, table=0)


class TestDescribe:
    def test_descriptions_are_informative(self):
        assert describe(None) == "unconditional"
        assert describe(BiasedBehavior(p=1.0)) == "always-taken"
        assert describe(BiasedBehavior(p=0.0)) == "never-taken"
        assert "biased" in describe(BiasedBehavior(p=0.5))
        assert "bursty" in describe(BurstyBehavior(common=True, excursion_rate=0.01))
        assert "sparse" in describe(SparseHistoryBehavior(positions=(9,), table=1))
        assert "loop" in describe(LoopBehavior(trip=4))
        assert "pattern" in describe(PatternBehavior(pattern=1, period=2))
        assert "local" in describe(LocalBehavior(k=2, table=3))
