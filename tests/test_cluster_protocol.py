"""Unit tests for the cluster wire protocol and artifact shipping.

These run without any coordinator: frames go over a local socketpair,
and the shipping helpers are exercised directly against a temp-dir
store.  The end-to-end coordinator/worker behaviour lives in
``test_cluster.py``.
"""

import socket
import struct

import numpy as np
import pytest

from repro.cluster import protocol
from repro.cluster.shipping import commit_sealed_blob, read_sealed_blob
from repro.orchestrator.store import (
    ArtifactStore,
    CorruptArtifact,
    seal_payload,
)


@pytest.fixture()
def pair():
    left, right = socket.socketpair()
    yield left, right
    left.close()
    right.close()


class TestFraming:
    def test_roundtrip_message_only(self, pair):
        left, right = pair
        protocol.send_frame(left, {"op": "poll", "free": 2})
        message, blob = protocol.recv_frame(right)
        assert message == {"op": "poll", "free": 2}
        assert blob == b""

    def test_roundtrip_with_blob(self, pair):
        left, right = pair
        payload = bytes(range(256)) * 100
        protocol.send_frame(left, {"op": "put"}, payload)
        message, blob = protocol.recv_frame(right)
        assert message == {"op": "put"}
        assert blob == payload

    def test_numpy_scalars_serialize(self, pair):
        # Task stats carry numpy scalars; they must cross as plain JSON.
        left, right = pair
        protocol.send_frame(
            left, {"mpki": np.float64(6.95), "count": np.int64(25)}
        )
        message, _ = protocol.recv_frame(right)
        assert message == {"mpki": 6.95, "count": 25}

    def test_clean_eof_raises_connection_closed(self, pair):
        left, right = pair
        left.close()
        with pytest.raises(protocol.ConnectionClosed):
            protocol.recv_frame(right)

    def test_eof_mid_frame_is_a_protocol_error(self, pair):
        # A torn frame is different from a clean close: the peer died
        # mid-send, and the partial bytes must not be trusted.
        left, right = pair
        left.sendall(struct.pack("!II", 100, 0) + b'{"op": "tr')
        left.close()
        with pytest.raises(protocol.ProtocolError) as excinfo:
            protocol.recv_frame(right)
        assert not isinstance(excinfo.value, protocol.ConnectionClosed)

    def test_oversize_header_rejected_without_alloc(self, pair):
        left, right = pair
        left.sendall(struct.pack("!II", protocol.MAX_MESSAGE_BYTES + 1, 0))
        with pytest.raises(protocol.ProtocolError, match="out of range"):
            protocol.recv_frame(right)

    def test_non_object_json_rejected(self, pair):
        left, right = pair
        encoded = b"[1, 2, 3]"
        left.sendall(struct.pack("!II", len(encoded), 0) + encoded)
        with pytest.raises(protocol.ProtocolError, match="not an object"):
            protocol.recv_frame(right)

    def test_undecodable_json_rejected(self, pair):
        left, right = pair
        encoded = b"{not json"
        left.sendall(struct.pack("!II", len(encoded), 0) + encoded)
        with pytest.raises(protocol.ProtocolError, match="undecodable"):
            protocol.recv_frame(right)

    def test_request_is_one_round_trip(self, pair):
        left, right = pair
        protocol.send_frame(right, {"ok": True}, b"reply-blob")
        reply, blob = protocol.request(left, {"op": "get"})
        assert reply == {"ok": True}
        assert blob == b"reply-blob"
        message, _ = protocol.recv_frame(right)
        assert message == {"op": "get"}


class TestParseAddress:
    def test_host_port(self):
        assert protocol.parse_address("10.0.0.5:7781") == ("10.0.0.5", 7781)

    def test_whitespace_tolerated(self):
        assert protocol.parse_address(" localhost:80 ") == ("localhost", 80)

    @pytest.mark.parametrize(
        "text", ["", "localhost", ":80", "host:", "host:abc", "host:70000"]
    )
    def test_junk_rejected(self, text):
        with pytest.raises(ValueError):
            protocol.parse_address(text)


class TestSealedBlobShipping:
    """The receive-side verification that keeps corrupt transfers out
    of every committed store."""

    def _store(self, tmp_path):
        return ArtifactStore(tmp_path / "cache")

    def test_commit_then_read_roundtrip(self, tmp_path):
        store = self._store(tmp_path)
        blob = seal_payload(b"artifact-payload")
        commit_sealed_blob(store, "trace", "k1", blob)
        assert read_sealed_blob(store, "trace", "k1") == blob

    def test_read_absent_is_none(self, tmp_path):
        assert read_sealed_blob(self._store(tmp_path), "trace", "nope") is None

    def test_corrupt_blob_never_commits(self, tmp_path):
        store = self._store(tmp_path)
        blob = bytearray(seal_payload(b"artifact-payload"))
        blob[3] ^= 0xFF  # damaged in flight
        with pytest.raises(CorruptArtifact):
            commit_sealed_blob(store, "trace", "k1", bytes(blob))
        # Nothing landed in the committed namespace — not even a temp.
        assert read_sealed_blob(store, "trace", "k1") is None
        assert not list((tmp_path / "cache").rglob("*.tmp"))

    def test_unsealed_blob_never_commits(self, tmp_path):
        store = self._store(tmp_path)
        with pytest.raises(CorruptArtifact):
            commit_sealed_blob(store, "trace", "k1", b"no footer at all")
        assert read_sealed_blob(store, "trace", "k1") is None

    def test_locally_corrupt_file_served_as_absent(self, tmp_path):
        # A file rotted on *our* disk must not be shipped to a peer; it
        # is quarantined and reported as a miss.
        store = self._store(tmp_path)
        blob = seal_payload(b"artifact-payload")
        commit_sealed_blob(store, "trace", "k1", blob)
        path = store._path("trace", "k1")
        damaged = bytearray(path.read_bytes())
        damaged[0] ^= 0xFF
        path.write_bytes(bytes(damaged))
        assert read_sealed_blob(store, "trace", "k1") is None
        assert not path.exists()  # moved to quarantine
        assert list((tmp_path / "cache" / "quarantine").rglob("*"))


class TestSharedWire:
    """The framing is one shared module (`repro.wire`), not a copy.

    `repro.cluster.protocol` and `repro.serve` must speak literally the
    same bytes; these tests pin the re-export identity and the edge
    cases the serve layer newly leans on (zero-length blobs, blob-size
    limits, frames torn mid-blob).
    """

    def test_cluster_protocol_reexports_repro_wire(self):
        from repro import wire

        assert protocol.send_frame is wire.send_frame
        assert protocol.recv_frame is wire.recv_frame
        assert protocol.request is wire.request
        assert protocol.parse_address is wire.parse_address
        assert protocol.connect is wire.connect
        assert protocol.ProtocolError is wire.ProtocolError
        assert protocol.ConnectionClosed is wire.ConnectionClosed
        assert protocol.MAX_MESSAGE_BYTES == wire.MAX_MESSAGE_BYTES
        assert protocol.MAX_BLOB_BYTES == wire.MAX_BLOB_BYTES

    def test_zero_length_blob_roundtrip(self, pair):
        # An explicit empty blob and no blob are the same frame.
        left, right = pair
        protocol.send_frame(left, {"op": "shard", "seq": 0}, b"")
        message, blob = protocol.recv_frame(right)
        assert message == {"op": "shard", "seq": 0}
        assert blob == b""

    def test_oversize_blob_header_rejected_without_alloc(self, pair):
        left, right = pair
        left.sendall(
            struct.pack("!II", 2, protocol.MAX_BLOB_BYTES + 1) + b"{}"
        )
        with pytest.raises(protocol.ProtocolError, match="out of range"):
            protocol.recv_frame(right)

    def test_eof_mid_blob_is_a_protocol_error(self, pair):
        # The header promised 1000 blob bytes; the peer died after 10.
        # The partial shard must never surface as a short-but-valid blob.
        left, right = pair
        body = b'{"op": "shard"}'
        left.sendall(
            struct.pack("!II", len(body), 1000) + body + b"\x00" * 10
        )
        left.close()
        with pytest.raises(protocol.ProtocolError) as excinfo:
            protocol.recv_frame(right)
        assert not isinstance(excinfo.value, protocol.ConnectionClosed)

    def test_partial_header_then_eof_is_a_protocol_error(self, pair):
        left, right = pair
        left.sendall(b"\x00\x00")  # 2 of the 8 header bytes
        left.close()
        with pytest.raises(protocol.ProtocolError) as excinfo:
            protocol.recv_frame(right)
        assert not isinstance(excinfo.value, protocol.ConnectionClosed)
