"""ROMBF baseline (Jimenez 2001 as evaluated by the paper)."""

import pytest

from repro.bpu.runner import simulate
from repro.bpu.scaling import scaled_tage_sc_l
from repro.core.rombf import RombfOptimizer


class TestTraining:
    def test_only_4_and_8_bit_variants(self):
        with pytest.raises(ValueError):
            RombfOptimizer(n_bits=6)

    @pytest.mark.parametrize("n_bits", [4, 8])
    def test_trains_annotations(self, tiny_profile, n_bits):
        result = RombfOptimizer(n_bits=n_bits).train(tiny_profile)
        assert result.n_bits == n_bits
        assert result.n_annotations > 0
        assert result.work_units > 0
        assert result.training_seconds > 0

    def test_8bit_explores_more_formulas_than_4bit(self, tiny_profile):
        r4 = RombfOptimizer(n_bits=4).train(tiny_profile)
        r8 = RombfOptimizer(n_bits=8).train(tiny_profile)
        # Same samples, 130 vs 10 formulas each: ~13x the work (Fig 16's
        # exponential-growth story).
        assert r8.work_units > 5 * r4.work_units

    def test_annotations_beat_baseline_on_profile(self, tiny_profile):
        result = RombfOptimizer(n_bits=8).train(tiny_profile)
        for pc, annotation in result.annotations.items():
            assert annotation.mispredictions < tiny_profile.per_pc[pc][1]

    def test_storage_per_branch(self):
        assert RombfOptimizer(n_bits=8).train.__self__.n_bits == 8
        from repro.core.rombf import RombfResult

        assert RombfResult(n_bits=8).storage_bits_per_branch == 9
        assert RombfResult(n_bits=4).storage_bits_per_branch == 5


class TestDeployment:
    def test_runtime_reduces_mispredictions(self, tiny_trace, tiny_baseline, tiny_profile):
        optimizer = RombfOptimizer(n_bits=8)
        trained = optimizer.train(tiny_profile)
        runtime = optimizer.build_runtime(trained)
        optimized = simulate(tiny_trace, scaled_tage_sc_l(64), runtime=runtime)
        assert optimized.mispredictions < tiny_baseline.mispredictions

    def test_whisper_beats_rombf(self, tiny_trace_alt, tiny_profile, tiny_whisper):
        """The paper's core claim, on the cross-input test trace."""
        _, _, _, whisper_runtime = tiny_whisper
        optimizer = RombfOptimizer(n_bits=8)
        rombf_runtime = optimizer.build_runtime(optimizer.train(tiny_profile))

        base = simulate(tiny_trace_alt, scaled_tage_sc_l(64))
        whisper = simulate(tiny_trace_alt, scaled_tage_sc_l(64), runtime=whisper_runtime)
        rombf = simulate(tiny_trace_alt, scaled_tage_sc_l(64), runtime=rombf_runtime)
        assert whisper.misprediction_reduction(base) > rombf.misprediction_reduction(base)

    def test_bias_entries_predict_constants(self, tiny_profile, tiny_trace):
        optimizer = RombfOptimizer(n_bits=4)
        trained = optimizer.train(tiny_profile)
        runtime = optimizer.build_runtime(trained)
        biased = [
            pc for pc, ann in trained.annotations.items() if ann.bias is not None
        ]
        if biased:
            pc = biased[0]
            entry = runtime.table[pc]
            assert entry(0) == entry(0xFFFF)

    def test_formula_entries_mask_history(self, tiny_profile):
        optimizer = RombfOptimizer(n_bits=4)
        trained = optimizer.train(tiny_profile)
        runtime = optimizer.build_runtime(trained)
        formula_pcs = [
            pc for pc, ann in trained.annotations.items() if ann.formula is not None
        ]
        if formula_pcs:
            entry = runtime.table[formula_pcs[0]]
            # Bits above n_bits must not influence the prediction.
            for history in (0b0101, 0b1010):
                assert entry(history) == entry(history | (1 << 20))
