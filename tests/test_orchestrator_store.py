"""On-disk artifact store: round-trip persistence of every artifact kind.

A first ("producer") context builds each artifact against a temporary
store; a second context with a fresh store instance on the same
directory must reconstruct every artifact purely from disk, with results
indistinguishable from the originals.
"""

import numpy as np
import pytest

from repro.branchnet import BUDGET_8KB
from repro.experiments.runner import ExperimentContext
from repro.orchestrator.store import ArtifactStore

EVENTS = 3_000
APP = "mysql"


@pytest.fixture(scope="module")
def store_root(tmp_path_factory):
    return tmp_path_factory.mktemp("artifact-store")


@pytest.fixture(scope="module")
def producer(store_root):
    """Context that computes everything once and fills the store."""
    ctx = ExperimentContext(n_events=EVENTS, store=ArtifactStore(store_root))
    artifacts = {
        "trace": ctx.trace(APP, 0),
        "baseline": ctx.baseline(APP, 64, input_id=1),
        "profile": ctx.profile(APP),
        "whisper": ctx.whisper(APP),
        "whisper_run": ctx.whisper_run(APP),
        "rombf": ctx.rombf(APP, 4),
        "rombf_run": ctx.rombf_run(APP, 4),
        "branchnet_run": ctx.branchnet_run(APP, BUDGET_8KB),
        "mtage": ctx.mtage(APP, input_id=1),
    }
    artifacts["timing"] = ctx.timing(
        APP, artifacts["baseline"], input_id=1, name="tage64"
    )
    return ctx, artifacts


@pytest.fixture()
def consumer(store_root):
    """Fresh context + store instance: everything must come from disk."""
    return ExperimentContext(n_events=EVENTS, store=ArtifactStore(store_root))


class TestRoundtrip:
    def test_trace(self, producer, consumer):
        _, art = producer
        loaded = consumer.trace(APP, 0)
        assert np.array_equal(loaded.block_ids, art["trace"].block_ids)
        assert np.array_equal(loaded.taken, art["trace"].taken)
        assert loaded.app == APP and loaded.input_id == 0
        assert consumer.store.stats.kinds["trace"].hits == 1

    def test_prediction_relinks_trace(self, producer, consumer):
        _, art = producer
        loaded = consumer.baseline(APP, 64, input_id=1)
        original = art["baseline"]
        assert loaded.mispredictions == original.mispredictions
        assert loaded.predictor_name == original.predictor_name
        # Trace linkage survives: warm-up re-slicing still works.
        resliced = loaded.with_warmup(0.5)
        assert resliced.n_conditional < loaded.n_conditional

    def test_profile_needs_and_uses_trace_provider(self, producer, consumer):
        _, art = producer
        loaded = consumer.profile(APP)
        assert loaded.per_pc == art["profile"].per_pc
        assert loaded.predictor_name == art["profile"].predictor_name
        assert [t.input_id for t in loaded.traces] == [
            t.input_id for t in art["profile"].traces
        ]

    def test_whisper_trained_and_placement(self, producer, consumer):
        _, art = producer
        trained, placement = consumer.whisper(APP)
        orig_trained, orig_placement = art["whisper"]
        assert trained.n_hints == orig_trained.n_hints
        assert trained.work_units == orig_trained.work_units
        assert placement.placements == orig_placement.placements
        assert placement.host_of_branch == orig_placement.host_of_branch

    def test_optimized_runs(self, producer, consumer):
        _, art = producer
        for name, fetch in (
            ("whisper_run", lambda c: c.whisper_run(APP)),
            ("rombf_run", lambda c: c.rombf_run(APP, 4)),
            ("branchnet_run", lambda c: c.branchnet_run(APP, BUDGET_8KB)),
            ("mtage", lambda c: c.mtage(APP, input_id=1)),
        ):
            loaded = fetch(consumer)
            assert loaded.mispredictions == art[name].mispredictions, name
            assert loaded.n_conditional == art[name].n_conditional, name

    def test_rombf_annotations(self, producer, consumer):
        _, art = producer
        loaded = consumer.rombf(APP, 4)
        original = art["rombf"]
        assert loaded.n_bits == original.n_bits
        assert set(loaded.annotations) == set(original.annotations)
        for pc, annotation in original.annotations.items():
            assert loaded.annotations[pc].mispredictions == annotation.mispredictions
            assert loaded.annotations[pc].bias == annotation.bias

    def test_timing(self, producer, consumer):
        _, art = producer
        prediction = consumer.baseline(APP, 64, input_id=1)
        loaded = consumer.timing(APP, prediction, input_id=1, name="tage64")
        assert loaded == art["timing"]

    def test_consumer_never_recomputes(self, producer, consumer):
        consumer.trace(APP, 0)
        consumer.baseline(APP, 64, input_id=1)
        consumer.profile(APP)
        stats = consumer.store.stats
        assert stats.hits > 0
        assert stats.misses == 0
        assert stats.puts == 0


class TestStoreMechanics:
    def test_unknown_kind_rejected(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with pytest.raises(KeyError):
            store.get("nonsense", "abc")
        with pytest.raises(KeyError):
            store.clear(kind="nonsense")

    def test_missing_key_is_recorded_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.get("timing", "0" * 32) is None
        assert store.stats.misses == 1

    def test_corrupt_file_treated_as_miss_and_removed(self, producer, store_root):
        store = ArtifactStore(store_root)
        victim = next((store_root / "timing").glob("*.npz"))
        victim.write_bytes(b"not an npz archive")
        key = victim.stem
        assert store.get("timing", key) is None
        assert not victim.exists()
        # Producer context can rebuild it transparently.
        ctx, art = producer
        rebuilt = ExperimentContext(
            n_events=EVENTS, store=ArtifactStore(store_root)
        )
        prediction = rebuilt.baseline(APP, 64, input_id=1)
        assert rebuilt.timing(APP, prediction, input_id=1, name="tage64") == art["timing"]

    def test_disk_usage_clear_and_stats(self, tmp_path, producer):
        src_ctx, art = producer
        store = ArtifactStore(tmp_path)
        key = "f" * 32
        store.put("timing", key, art["timing"])
        assert store.has("timing", key)
        usage = store.disk_usage()
        assert usage["timing"][0] == 1 and usage["timing"][1] > 0
        assert store.clear(kind="timing") == 1
        assert not store.has("timing", key)

    def test_persist_stats_accumulates(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.get("timing", "0" * 32)  # one miss
        first = store.persist_stats()
        assert first["misses"] == 1
        second = ArtifactStore(tmp_path)
        second.get("timing", "0" * 32)
        merged = second.persist_stats(
            extra={"kinds": {"trace": {"hits": 5, "misses": 0, "puts": 0}}}
        )
        assert merged["misses"] == 2
        assert merged["kinds"]["trace"]["hits"] == 5
        assert ArtifactStore(tmp_path).read_persistent_stats()["misses"] == 2


class TestContextCacheKeys:
    """Satellite regressions: the in-process (L1) key schemes."""

    def test_timing_distinguishes_predictions_under_same_name(self, producer):
        """Two timing runs sharing a ``name`` but fed different
        predictions must not collide in the cache."""
        ctx, art = producer
        with_pred = ctx.timing(APP, art["baseline"], input_id=1, name="shared")
        ideal = ctx.timing(APP, None, input_id=1, name="shared")
        assert with_pred.mispredictions > 0
        assert ideal.mispredictions == 0
        assert with_pred.cycles != ideal.cycles

    def test_timing_distinguishes_placements(self, producer):
        ctx, art = producer
        _, placement = art["whisper"]
        bare = ctx.timing(APP, art["whisper_run"], input_id=1, name="w")
        hinted = ctx.timing(
            APP, art["whisper_run"], placement=placement, input_id=1, name="w"
        )
        assert hinted.hint_instructions > 0
        assert bare.hint_instructions == 0

    def test_run_families_use_separate_dicts(self, producer):
        ctx, _ = producer
        assert len(ctx._whisper_runs) >= 1
        assert len(ctx._rombf_runs) >= 1
        assert len(ctx._branchnet_runs) >= 1
        assert not set(ctx._whisper_runs) & set(ctx._rombf_runs)
        assert not set(ctx._whisper_runs) & set(ctx._branchnet_runs)
