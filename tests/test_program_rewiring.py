"""Driver/follower rewiring in program synthesis (DESIGN.md decision 2)."""

import numpy as np

from repro.workloads.behaviors import BiasedBehavior, SparseHistoryBehavior
from repro.workloads.generator import get_program
from repro.workloads.registry import get_spec


class TestRewiring:
    def test_programs_have_drivers_and_followers(self, tiny_program):
        drivers = [
            b for b in tiny_program.behaviors
            if isinstance(b, BiasedBehavior) and 0.0 < b.p < 1.0
        ]
        followers = [
            b for b in tiny_program.behaviors
            if isinstance(b, SparseHistoryBehavior)
        ]
        assert drivers and followers

    def test_follower_depths_span_fig6_range(self):
        program = get_program(get_spec("mysql"))
        depths = [
            b.needed_length
            for b in program.behaviors
            if isinstance(b, SparseHistoryBehavior)
        ]
        assert min(depths) >= 1
        assert max(depths) > 64  # long-history correlations exist
        mid = sum(1 for d in depths if 16 < d <= 256)
        assert mid > len(depths) * 0.3  # bulk in the paper's 32-256 band

    def test_follower_outcomes_track_history_bits(self, tiny_program, tiny_trace):
        """Replaying the trace, follower outcomes (minus noise) must match
        their planted truth table on the live history — the ground truth
        the whole evaluation relies on."""
        followers = {}
        for block, behavior in enumerate(tiny_program.behaviors):
            if isinstance(behavior, SparseHistoryBehavior) and behavior.noise < 0.01:
                followers[block] = behavior

        history = 0
        matches = total = 0
        block_ids = tiny_trace.block_ids
        taken_arr = tiny_trace.taken
        cond = tiny_trace.is_conditional
        for i in range(tiny_trace.n_events):
            if not cond[i]:
                continue
            block = int(block_ids[i])
            taken = bool(taken_arr[i])
            behavior = followers.get(block)
            if behavior is not None:
                key = 0
                for bit_index, pos in enumerate(behavior.positions):
                    key |= ((history >> pos) & 1) << bit_index
                expected = bool((behavior.table >> key) & 1)
                matches += expected == taken
                total += 1
            history = ((history << 1) | int(taken)) & ((1 << 1024) - 1)
        assert total > 50
        assert matches / total > 0.99  # noise-free followers are exact
