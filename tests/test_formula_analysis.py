"""Formula-space analytics and the ASCII chart renderer."""

import pytest

from repro.analysis.ascii_chart import bar_chart, sparkline
from repro.core.formula_analysis import (
    distinct_functions,
    encoding_redundancy,
    expressiveness_gain,
    function_coverage,
)
from repro.core.formulas import ROMBF_OPS, WHISPER_OPS, formula_space_size


class TestDistinctFunctions:
    def test_rombf_2_inputs(self):
        # AND and OR of (b0, b1): exactly 2 functions.
        assert distinct_functions(2, ROMBF_OPS, with_invert=False) == 2

    def test_whisper_2_inputs(self):
        # and/or/impl/cnimpl are 4 distinct functions; invert doubles them.
        assert distinct_functions(2, WHISPER_OPS, with_invert=False) == 4
        assert distinct_functions(2, WHISPER_OPS, with_invert=True) == 8

    def test_encoding_is_injective_at_8_inputs(self):
        # Fixed tree shape means no re-association redundancy; measured:
        # every one of the 32768 encodings is a distinct function, so
        # every bit of the 15-bit formula field pulls its weight.
        reachable = distinct_functions(8, WHISPER_OPS, with_invert=True)
        assert reachable == formula_space_size(8)
        assert encoding_redundancy(8, WHISPER_OPS) == pytest.approx(1.0)

    def test_extension_strictly_adds_expressiveness(self):
        gains = expressiveness_gain(8)
        assert gains["whisper (4 ops)"] > gains["rombf (and/or)"]
        assert gains["whisper + invert"] > gains["whisper (4 ops)"]
        assert gains["rombf + invert"] >= 2 * gains["rombf (and/or)"] - 1

    def test_redundancy_at_least_one(self):
        assert encoding_redundancy(4, WHISPER_OPS) >= 1.0


class TestCoverage:
    def test_full_fraction_covers_everything(self):
        assert function_coverage(1.0, 4, WHISPER_OPS) == pytest.approx(1.0)

    def test_injective_encoding_coverage_equals_fraction(self):
        # With an injective encoding, coverage tracks the fraction: the
        # Fig-15 quality comes from near-optimal formulas being dense,
        # not from encoding redundancy.
        coverage = function_coverage(0.01, 8, WHISPER_OPS)
        assert coverage == pytest.approx(0.01, abs=0.002)

    def test_monotone_in_fraction(self):
        small = function_coverage(0.01, 8, WHISPER_OPS)
        large = function_coverage(0.1, 8, WHISPER_OPS)
        assert large >= small

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            function_coverage(0.0)


class TestAsciiChart:
    def test_bar_chart_renders_all_labels(self):
        text = bar_chart({"whisper": 16.8, "rombf": 8.9})
        assert "whisper" in text and "rombf" in text
        assert "16.80" in text

    def test_longest_bar_is_max_value(self):
        text = bar_chart({"a": 10, "b": 5}, width=20)
        lines = text.splitlines()
        assert lines[0].count("#") == 20
        assert lines[1].count("#") == 10

    def test_negative_values_render_dashes(self):
        text = bar_chart({"bad": -5.0, "good": 5.0})
        assert "-" in text.splitlines()[0]

    def test_empty(self):
        assert bar_chart({}) == "(no data)"

    def test_width_validation(self):
        with pytest.raises(ValueError):
            bar_chart({"a": 1}, width=2)

    def test_sparkline_shape(self):
        line = sparkline([0, 1, 2, 3, 4])
        assert len(line) == 5
        assert line[0] == " " and line[-1] == "@"

    def test_sparkline_constant(self):
        assert sparkline([3, 3, 3]) == "   "

    def test_sparkline_empty(self):
        assert sparkline([]) == ""
