"""Experiment harness smoke tests at miniature scale.

These verify structure, invariants, and rendering of every figure module
— not the headline magnitudes, which need larger traces (exercised by
the benchmark suite and recorded in EXPERIMENTS.md).
"""

import pytest

from repro.experiments import (
    fig02_mpki,
    fig05_cdf,
    fig08_gate_delay,
    fig11_encoding,
    fig19_overhead,
    fig22_warmup,
    tables,
)
from repro.experiments.runner import (
    SCALE_EVENTS,
    ExperimentContext,
    FigureResult,
    current_scale,
    deploy_budget,
)


@pytest.fixture(scope="module")
def mini_ctx():
    # Very small: these tests check plumbing, not magnitudes.
    return ExperimentContext(n_events=12_000)


class TestInfrastructure:
    def test_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "medium")
        assert current_scale() == "medium"
        monkeypatch.setenv("REPRO_SCALE", "bogus")
        with pytest.raises(ValueError):
            current_scale()

    def test_scales_are_ordered(self):
        assert SCALE_EVENTS["small"] < SCALE_EVENTS["medium"] < SCALE_EVENTS["full"]

    def test_context_memoises(self, mini_ctx):
        a = mini_ctx.baseline("kafka", 64, input_id=1)
        b = mini_ctx.baseline("kafka", 64, input_id=1)
        assert a.mispredictions == b.mispredictions

    def test_figure_result_rendering(self):
        figure = FigureResult(
            figure="Fig X",
            title="demo",
            headers=["a", "b"],
            rows=[["x", 1.234567], ["y", 2]],
            paper_note="note",
            summary="sum",
        )
        text = figure.to_text()
        assert "Fig X" in text and "paper: note" in text and "measured: sum" in text
        assert "1.235" in text

    def test_deploy_budget_prefix_property(self):
        class FakeModel:
            storage_bytes = 1000

        from repro.branchnet.trainer import BranchNetResult

        result = BranchNetResult(models={1: FakeModel(), 2: FakeModel(), 3: FakeModel()})
        assert len(deploy_budget(result, 2500)) == 2
        assert len(deploy_budget(result, None)) == 3
        assert list(deploy_budget(result, 2500)) == [1, 2]


class TestLightFigures:
    def test_fig08(self, mini_ctx):
        result = fig08_gate_delay.run(mini_ctx)
        rows = {row[0]: row for row in result.rows}
        assert rows[8][2] == 19  # the paper's 19-gate delay
        assert rows[8][3] == 15  # 15-bit encoding

    def test_fig11(self, mini_ctx):
        result = fig11_encoding.run(mini_ctx)
        total = [row for row in result.rows if row[0] == "Total"][0]
        assert total[1] == 33

    def test_tables(self, mini_ctx):
        t1 = tables.run_table1(mini_ctx)
        assert len(t1.rows) == 12
        t2 = tables.run_table2(mini_ctx)
        assert any(row[0] == "fetch_width" and row[1] == 6 for row in t2.rows)
        t3 = tables.run_table3(mini_ctx)
        values = dict((row[0], row[1]) for row in t3.rows)
        assert values["Maximum history length (N)"] == 1024


class TestWorkloadFigures:
    def test_fig02_structure(self, mini_ctx):
        result = fig02_mpki.run(mini_ctx)
        assert len(result.rows) == 13  # 12 apps + average
        mpkis = [row[1] for row in result.rows[:-1]]
        assert all(m > 0 for m in mpkis)

    def test_fig05_spec_more_concentrated(self, mini_ctx):
        result = fig05_cdf.run(mini_ctx)
        dc = [row for row in result.rows if row[0] == "datacenter"]
        spec = [row for row in result.rows if row[0] == "spec" and row[1] != "gcc"]
        dc_top50 = sum(row[3] for row in dc) / len(dc)
        spec_top50 = sum(row[3] for row in spec) / len(spec)
        assert spec_top50 > dc_top50

    def test_fig19_overheads_positive(self, mini_ctx):
        result = fig19_overhead.run(mini_ctx)
        avg = result.rows[-1]
        assert avg[3] > 0 and avg[4] > 0

    def test_fig22_monotone_structure(self, mini_ctx):
        result = fig22_warmup.run(mini_ctx)
        assert len(result.rows) == 10
