"""Hint-placement persistence (the deployable 'updated binary' artifact)."""

import json

import pytest

from repro.bpu.runner import simulate
from repro.bpu.scaling import scaled_tage_sc_l
from repro.core.serialization import (
    load_placement,
    load_runtime,
    placement_from_dict,
    placement_to_dict,
    save_placement,
)


class TestRoundtrip:
    def test_placement_survives_roundtrip(self, tiny_whisper, tmp_path):
        _, _, placement, _ = tiny_whisper
        path = tmp_path / "hints.json"
        save_placement(placement, path)
        loaded = load_placement(path)
        assert loaded.host_of_branch == placement.host_of_branch
        assert loaded.dropped == placement.dropped
        assert set(loaded.placements) == set(placement.placements)
        for block in placement.placements:
            assert loaded.placements[block] == placement.placements[block]

    def test_loaded_runtime_predicts_identically(
        self, tiny_whisper, tiny_trace, tmp_path
    ):
        _, _, placement, runtime = tiny_whisper
        path = tmp_path / "hints.json"
        save_placement(placement, path)
        reloaded = load_runtime(path)
        original = simulate(tiny_trace, scaled_tage_sc_l(64), runtime=runtime)
        restored = simulate(tiny_trace, scaled_tage_sc_l(64), runtime=reloaded)
        assert original.mispredictions == restored.mispredictions

    def test_document_is_valid_json(self, tiny_whisper, tmp_path):
        _, _, placement, _ = tiny_whisper
        path = tmp_path / "hints.json"
        save_placement(placement, path)
        data = json.loads(path.read_text())
        assert data["format"] == "whisper-hints"
        assert data["version"] == 1


class TestValidation:
    def test_rejects_wrong_format(self):
        with pytest.raises(ValueError):
            placement_from_dict({"format": "elf", "version": 1})

    def test_rejects_wrong_version(self):
        with pytest.raises(ValueError):
            placement_from_dict({"format": "whisper-hints", "version": 99})

    def test_empty_document(self):
        placement = placement_from_dict({"format": "whisper-hints", "version": 1})
        assert placement.n_hints == 0
