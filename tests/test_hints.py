"""brhint encoding (paper Fig 11)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.formulas import AND, IMPL, FormulaTree
from repro.core.geometric import geometric_lengths
from repro.core.hints import (
    BIAS_NONE,
    BIAS_NOT_TAKEN,
    BIAS_TAKEN,
    FORMULA_BITS,
    PC_BITS,
    TOTAL_BITS,
    BrHint,
)

hint_strategy = st.builds(
    BrHint,
    history_index=st.integers(0, 15),
    formula_bits=st.integers(0, (1 << FORMULA_BITS) - 1),
    bias=st.sampled_from([BIAS_NONE, BIAS_TAKEN, BIAS_NOT_TAKEN]),
    pc_offset=st.integers(0, (1 << PC_BITS) - 1),
)


class TestEncoding:
    def test_total_width_is_33_bits(self):
        assert TOTAL_BITS == 33

    @given(hint_strategy)
    def test_roundtrip(self, hint):
        assert BrHint.decode(hint.encode()) == hint

    @given(hint_strategy)
    def test_encoding_fits_33_bits(self, hint):
        assert 0 <= hint.encode() < (1 << 33)

    def test_field_layout_msb_first(self):
        hint = BrHint(history_index=0xF, formula_bits=0, bias=0, pc_offset=0)
        assert hint.encode() == 0xF << (15 + 2 + 12)

    def test_pc_offset_is_lsb_field(self):
        hint = BrHint(history_index=0, formula_bits=0, bias=0, pc_offset=0xABC)
        assert hint.encode() == 0xABC

    def test_decode_out_of_range(self):
        with pytest.raises(ValueError):
            BrHint.decode(1 << 33)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(history_index=16, formula_bits=0, bias=0, pc_offset=0),
            dict(history_index=0, formula_bits=1 << 15, bias=0, pc_offset=0),
            dict(history_index=0, formula_bits=0, bias=3, pc_offset=0),
            dict(history_index=0, formula_bits=0, bias=0, pc_offset=1 << 12),
        ],
    )
    def test_field_range_validation(self, kwargs):
        with pytest.raises(ValueError):
            BrHint(**kwargs)


class TestSemantics:
    def test_history_length_lookup(self):
        lengths = geometric_lengths()
        for i in (0, 5, 15):
            hint = BrHint(history_index=i, formula_bits=0, bias=0, pc_offset=0)
            assert hint.history_length == lengths[i]

    def test_bias_names(self):
        assert BrHint(0, 0, BIAS_TAKEN, 0).bias_name == "taken"
        assert BrHint(0, 0, BIAS_NOT_TAKEN, 0).bias_name == "not-taken"
        assert BrHint(0, 0, BIAS_NONE, 0).bias_name == "none"

    def test_bias_prediction_is_constant(self):
        taken = BrHint(0, 0, BIAS_TAKEN, 0)
        nottaken = BrHint(0, 0, BIAS_NOT_TAKEN, 0)
        for history in (0, 0x5A, 0xFF):
            assert taken.predict(history) is True
            assert nottaken.predict(history) is False

    def test_formula_prediction_matches_tree(self):
        tree = FormulaTree(ops=(IMPL,) + (AND,) * 6, invert=True, n_inputs=8)
        hint = BrHint(
            history_index=0, formula_bits=tree.encode(), bias=BIAS_NONE, pc_offset=0
        )
        assert hint.formula() == tree
        for history in range(0, 256, 13):
            assert hint.predict(history) == bool(tree.evaluate(history))

    def test_bias_hint_has_no_formula(self):
        assert BrHint(0, 0, BIAS_TAKEN, 0).formula() is None
