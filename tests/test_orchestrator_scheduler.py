"""Task graph execution, run manifests, and the metrics helpers."""

import json

import pytest

from repro.orchestrator.manifest import (
    MANIFEST_NAME,
    RunManifest,
    load_manifest,
)
from repro.orchestrator.metrics import (
    aggregate_cache_stats,
    format_bytes,
    hit_rate,
    slowest_tasks,
    worker_utilisation,
)
from repro.orchestrator.scheduler import CANCELLED, DONE, FAILED, SKIPPED, TaskGraph


# Module-level so the process-pool path can pickle them by reference.
def _emit(tag):
    return tag


def _boom():
    raise RuntimeError("deliberate failure")


def _touch(path, tag):
    with open(path, "a") as handle:
        handle.write(tag + "\n")
    return tag


class TestGraphStructure:
    def test_duplicate_name_rejected(self):
        graph = TaskGraph()
        graph.add("a", _emit, args=("a",))
        with pytest.raises(ValueError, match="duplicate"):
            graph.add("a", _emit, args=("a",))

    def test_unknown_dependency_rejected(self):
        graph = TaskGraph()
        graph.add("a", _emit, args=("a",), deps=["ghost"])
        with pytest.raises(ValueError, match="unknown"):
            graph.run()

    def test_cycle_rejected(self):
        graph = TaskGraph()
        graph.add("a", _emit, args=("a",), deps=["b"])
        graph.add("b", _emit, args=("b",), deps=["a"])
        graph.add("c", _emit, args=("c",))
        with pytest.raises(ValueError, match="cycle"):
            graph.run()
        assert "a" in graph and len(graph) == 3


class TestInlineExecution:
    def test_dependencies_run_first(self, tmp_path):
        order_file = tmp_path / "order.txt"
        graph = TaskGraph()
        graph.add("late", _touch, args=(str(order_file), "late"), deps=["mid"])
        graph.add("mid", _touch, args=(str(order_file), "mid"), deps=["early"])
        graph.add("early", _touch, args=(str(order_file), "early"))
        records = graph.run(jobs=1)
        assert [r.status for r in records] == [DONE, DONE, DONE]
        assert order_file.read_text().split() == ["early", "mid", "late"]

    def test_failure_skips_transitive_dependents_only(self):
        graph = TaskGraph()
        graph.add("bad", _boom)
        graph.add("child", _emit, args=("child",), deps=["bad"])
        graph.add("grandchild", _emit, args=("gc",), deps=["child"])
        graph.add("independent", _emit, args=("ok",))
        records = {r.name: r for r in graph.run(jobs=1)}
        assert records["bad"].status == FAILED
        assert "deliberate failure" in records["bad"].error
        assert records["child"].status == SKIPPED
        assert records["grandchild"].status == SKIPPED
        assert records["independent"].status == DONE
        assert records["independent"].result == "ok"

    def test_log_callback_reports_progress(self):
        lines = []
        graph = TaskGraph()
        graph.add("only", _emit, args=("x",))
        graph.run(jobs=1, log=lines.append)
        assert len(lines) == 1 and "only" in lines[0]


class TestPoolExecution:
    def test_pool_runs_everything(self, tmp_path):
        order_file = tmp_path / "order.txt"
        graph = TaskGraph()
        graph.add("a", _touch, args=(str(order_file), "a"))
        graph.add("b", _touch, args=(str(order_file), "b"))
        graph.add("after", _touch, args=(str(order_file), "after"), deps=["a", "b"])
        records = {r.name: r for r in graph.run(jobs=2)}
        assert all(r.status == DONE for r in records.values())
        assert all(r.worker > 0 for r in records.values())
        assert order_file.read_text().split()[-1] == "after"

    def test_pool_failure_propagation(self):
        graph = TaskGraph()
        graph.add("bad", _boom)
        graph.add("child", _emit, args=("c",), deps=["bad"])
        graph.add("sibling", _emit, args=("s",))
        records = {r.name: r for r in graph.run(jobs=2)}
        assert records["bad"].status == FAILED
        assert records["child"].status == SKIPPED
        assert records["sibling"].status == DONE


class TestManifest:
    def _manifest(self):
        graph = TaskGraph()
        graph.add("ok", _emit, args=("x",), kind="stage", app="mysql")
        graph.add("bad", _boom, kind="stage", app="kafka")
        graph.add("skipme", _emit, args=("y",), deps=["bad"], kind="figure")
        records = graph.run(jobs=1)
        cache = {"hits": 3, "misses": 1, "puts": 1,
                 "kinds": {"trace": {"hits": 3, "misses": 1, "puts": 1}}}
        return RunManifest.from_run(
            records, cache=cache, scale="small", n_events=1000, jobs=1,
            figures=["fig02"], cache_dir="/tmp/cache", wall_seconds=1.5,
        )

    def test_counts_and_summary(self):
        manifest = self._manifest()
        counts = manifest.counts()
        assert counts == {DONE: 1, FAILED: 1, SKIPPED: 1, CANCELLED: 0}
        text = "\n".join(manifest.summary_lines())
        assert "1 done, 1 failed, 1 skipped" in text
        assert "3 hits / 1 misses (75% hit rate)" in text
        assert "FAILED bad:" in text

    def test_save_load_roundtrip(self, tmp_path):
        manifest = self._manifest()
        path = tmp_path / MANIFEST_NAME
        manifest.save(path)
        loaded = RunManifest.load(path)
        assert loaded.scale == "small"
        assert loaded.figures == ["fig02"]
        assert loaded.counts() == manifest.counts()
        assert loaded.cache == manifest.cache
        assert [t["name"] for t in loaded.tasks] == [t["name"] for t in manifest.tasks]

    def test_load_rejects_other_documents(self, tmp_path):
        path = tmp_path / "not-manifest.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ValueError):
            RunManifest.load(path)
        assert load_manifest(path) is None
        assert load_manifest(tmp_path / "absent.json") is None


class TestMetrics:
    def test_hit_rate(self):
        assert hit_rate({"hits": 3, "misses": 1}) == 0.75
        assert hit_rate({}) == 0.0

    def test_format_bytes(self):
        assert format_bytes(512) == "512B"
        assert format_bytes(2048) == "2.0KB"
        assert format_bytes(3 * 1024 * 1024) == "3.0MB"

    def test_aggregate_cache_stats_merges_worker_deltas(self):
        results = [
            {"cache": {"kinds": {"trace": {"hits": 1, "misses": 2, "puts": 2}}}},
            {"cache": {"kinds": {"trace": {"hits": 4, "misses": 0, "puts": 0}}}},
            "not a dict",
            None,
        ]
        merged = aggregate_cache_stats(results)
        assert merged["hits"] == 5
        assert merged["misses"] == 2
        assert merged["kinds"]["trace"]["puts"] == 2

    def test_worker_utilisation_bounds(self):
        from repro.orchestrator.scheduler import TaskRecord

        records = [
            TaskRecord(name="a", status=DONE, seconds=2.0),
            TaskRecord(name="b", status=DONE, seconds=2.0),
            TaskRecord(name="c", status=FAILED, seconds=9.0),
        ]
        assert worker_utilisation(records, jobs=2, wall_seconds=2.0) == 1.0
        assert worker_utilisation(records, jobs=2, wall_seconds=4.0) == 0.5
        assert worker_utilisation(records, jobs=0, wall_seconds=4.0) == 0.0

    def test_slowest_tasks_ranks_done_only(self):
        from repro.orchestrator.scheduler import TaskRecord

        records = [
            TaskRecord(name="fast", status=DONE, seconds=0.1),
            TaskRecord(name="slow", status=DONE, seconds=5.0),
            TaskRecord(name="failed", status=FAILED, seconds=99.0),
        ]
        ranked = slowest_tasks(records, count=2)
        assert list(ranked) == ["slow", "fast"]
