"""WhisperOptimizer end-to-end: training, acceptance, hints, deployment."""

import pytest

from repro.bpu.runner import simulate
from repro.bpu.scaling import scaled_tage_sc_l
from repro.core.geometric import geometric_lengths
from repro.core.hints import BIAS_NONE
from repro.core.whisper import WhisperConfig, WhisperOptimizer


class TestConfig:
    def test_paper_defaults(self):
        config = WhisperConfig()
        assert config.min_history == 8
        assert config.max_history == 1024
        assert config.num_lengths == 16
        assert config.hash_bits == 8
        assert len(config.ops) == 4
        assert config.hint_buffer_entries == 32
        assert config.explore_fraction == 0.001

    def test_lengths_match_series(self):
        assert WhisperConfig().lengths() == geometric_lengths()


class TestTraining:
    def test_produces_hints(self, tiny_whisper):
        _, trained, _, _ = tiny_whisper
        assert trained.n_hints > 0
        assert trained.candidates_considered >= trained.n_hints
        assert trained.training_seconds > 0
        assert trained.work_units > 0

    def test_hints_beat_baseline_on_profile(self, tiny_whisper):
        _, trained, _, _ = tiny_whisper
        for hint in trained.hints.values():
            assert hint.predicted_mispredictions < hint.baseline_mispredictions

    def test_lengths_come_from_series(self, tiny_whisper):
        _, trained, _, _ = tiny_whisper
        series = geometric_lengths()
        for hint in trained.hints.values():
            assert hint.length == series[hint.length_index]

    def test_expected_reduction_positive(self, tiny_whisper):
        _, trained, _, _ = tiny_whisper
        assert trained.expected_misprediction_reduction > 0

    def test_brhint_conversion(self, tiny_whisper):
        _, trained, _, _ = tiny_whisper
        for hint in list(trained.hints.values())[:25]:
            brhint = hint.to_brhint(pc_offset=5)
            assert brhint.pc_offset == 5
            assert brhint.history_index == hint.length_index
            if brhint.bias == BIAS_NONE:
                assert brhint.formula() == hint.result.formula

    def test_training_is_deterministic(self, tiny_profile):
        a = WhisperOptimizer().train(tiny_profile)
        b = WhisperOptimizer().train(tiny_profile)
        assert set(a.hints) == set(b.hints)
        for pc in a.hints:
            assert a.hints[pc].result.mispredictions == b.hints[pc].result.mispredictions


class TestDeployment:
    def test_reduces_mispredictions_on_profile_input(
        self, tiny_trace, tiny_baseline, tiny_whisper
    ):
        _, _, _, runtime = tiny_whisper
        optimized = simulate(tiny_trace, scaled_tage_sc_l(64), runtime=runtime)
        assert optimized.mispredictions < tiny_baseline.mispredictions
        assert optimized.misprediction_reduction(tiny_baseline) > 10.0

    def test_reduces_mispredictions_cross_input(self, tiny_trace_alt, tiny_whisper):
        _, _, _, runtime = tiny_whisper
        baseline = simulate(tiny_trace_alt, scaled_tage_sc_l(64))
        optimized = simulate(tiny_trace_alt, scaled_tage_sc_l(64), runtime=runtime)
        assert optimized.misprediction_reduction(baseline) > 0.0

    def test_hinted_share_nontrivial(self, tiny_trace, tiny_whisper):
        _, _, _, runtime = tiny_whisper
        optimized = simulate(tiny_trace, scaled_tage_sc_l(64), runtime=runtime)
        assert optimized.hinted.mean() > 0.02

    def test_optimize_convenience(self, tiny_profile, tiny_program):
        optimizer = WhisperOptimizer()
        trained, placement, runtime = optimizer.optimize(tiny_profile, tiny_program)
        assert trained.n_hints >= placement.n_hints > 0
        assert runtime.buffer.capacity == 32


class TestVariants:
    def test_smaller_fraction_explores_fewer(self, tiny_profile):
        small = WhisperOptimizer(WhisperConfig(explore_fraction=0.001)).train(tiny_profile)
        large = WhisperOptimizer(WhisperConfig(explore_fraction=0.01)).train(tiny_profile)
        assert large.work_units > small.work_units

    def test_exhaustive_never_worse_on_profile(self, tiny_profile):
        small = WhisperOptimizer(WhisperConfig(explore_fraction=0.001)).train(tiny_profile)
        # Compare per-branch profile mispredictions for common hints.
        big = WhisperOptimizer(WhisperConfig(explore_fraction=0.05)).train(tiny_profile)
        for pc in set(small.hints) & set(big.hints):
            assert (
                big.hints[pc].predicted_mispredictions
                <= small.hints[pc].predicted_mispredictions
            )

    def test_rombf_ops_variant_trains(self, tiny_profile):
        from repro.core.formulas import ROMBF_OPS

        config = WhisperConfig(ops=ROMBF_OPS, with_invert=False, explore_fraction=1.0)
        trained = WhisperOptimizer(config).train(tiny_profile)
        assert trained.n_hints > 0

    def test_max_candidates_cap(self, tiny_profile):
        config = WhisperConfig(max_candidates=10)
        trained = WhisperOptimizer(config).train(tiny_profile)
        assert trained.candidates_considered <= 10
