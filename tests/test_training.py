"""Substream extraction and candidate selection for Whisper training."""

import pytest

from repro.core.geometric import geometric_lengths
from repro.core.hashing import fold_history
from repro.core.training import (
    BranchTrainingData,
    collect_training_data,
    select_candidates,
)


class TestBranchTrainingData:
    def test_add_sample_routes_by_direction(self):
        data = BranchTrainingData(pc=0x10, lengths=[8, 16])
        data.add_sample([3, 7], taken=True)
        data.add_sample([3, 9], taken=False)
        data.add_sample([3, 7], taken=True)
        taken, nottaken = data.tables_for(8)
        assert taken == {3: 2} and nottaken == {3: 1}
        taken16, nottaken16 = data.tables_for(16)
        assert taken16 == {7: 2} and nottaken16 == {9: 1}
        assert data.executions == 3 and data.taken_total == 2

    def test_merge(self):
        a = BranchTrainingData(pc=0x10, lengths=[8])
        b = BranchTrainingData(pc=0x10, lengths=[8])
        a.add_sample([1], True)
        b.add_sample([1], True)
        b.add_sample([2], False)
        a.merge(b)
        assert a.executions == 3
        assert a.taken[8] == {1: 2}
        assert a.nottaken[8] == {2: 1}

    def test_merge_rejects_mismatched_branch(self):
        a = BranchTrainingData(pc=0x10, lengths=[8])
        b = BranchTrainingData(pc=0x20, lengths=[8])
        with pytest.raises(ValueError):
            a.merge(b)


class TestCollect:
    def test_sample_counts_match_executions(self, tiny_trace):
        stats = tiny_trace.per_branch_stats()
        pcs = sorted(stats, key=lambda pc: -stats[pc][0])[:5]
        data = collect_training_data([tiny_trace], pcs)
        for pc in pcs:
            assert data[pc].executions == stats[pc][0]
            assert data[pc].taken_total == stats[pc][1]

    def test_tables_cover_all_lengths(self, tiny_trace):
        stats = tiny_trace.per_branch_stats()
        pc = max(stats, key=lambda pc: stats[pc][0])
        data = collect_training_data([tiny_trace], [pc])
        for length in geometric_lengths():
            taken, nottaken = data[pc].tables_for(length)
            total = sum(taken.values()) + sum(nottaken.values())
            assert total == stats[pc][0]

    def test_hash_keys_are_8_bit(self, tiny_trace):
        stats = tiny_trace.per_branch_stats()
        pc = max(stats, key=lambda pc: stats[pc][0])
        data = collect_training_data([tiny_trace], [pc])
        for length in geometric_lengths():
            taken, nottaken = data[pc].tables_for(length)
            for key in list(taken) + list(nottaken):
                assert 0 <= key < 256

    def test_folds_match_reference(self, tiny_trace):
        """Cross-check the streaming fold against a reconstruction."""
        stats = tiny_trace.per_branch_stats()
        pc = max(stats, key=lambda pc: stats[pc][0])
        data = collect_training_data([tiny_trace], [pc], lengths=[21])

        # Rebuild by hand.
        history = 0
        expected = {}
        for i, event_pc, taken in tiny_trace.conditional_events():
            if event_pc == pc:
                key = fold_history(history, 21)
                expected.setdefault(key, [0, 0])
                expected[key][0 if taken else 1] += 1
            history = ((history << 1) | int(taken)) & ((1 << 1024) - 1)
        taken_table, nottaken_table = data[pc].tables_for(21)
        assert taken_table == {k: v[0] for k, v in expected.items() if v[0]}
        assert nottaken_table == {k: v[1] for k, v in expected.items() if v[1]}

    def test_multiple_traces_accumulate(self, tiny_trace, tiny_trace_alt):
        stats0 = tiny_trace.per_branch_stats()
        stats1 = tiny_trace_alt.per_branch_stats()
        common = [pc for pc in stats0 if pc in stats1][:3]
        data = collect_training_data([tiny_trace, tiny_trace_alt], common)
        for pc in common:
            assert data[pc].executions == stats0[pc][0] + stats1[pc][0]


class TestSelectCandidates:
    def test_thresholds(self):
        stats = {
            0x10: (100, 20),
            0x20: (100, 0),   # never mispredicts
            0x30: (2, 2),     # too few executions
            0x40: (50, 5),
        }
        chosen = select_candidates(stats, min_mispredictions=1, min_executions=4)
        assert chosen == [0x10, 0x40]

    def test_sorted_by_mispredictions_desc(self):
        stats = {0x10: (100, 5), 0x20: (100, 50), 0x30: (100, 20)}
        assert select_candidates(stats) == [0x20, 0x30, 0x10]

    def test_max_candidates(self):
        stats = {pc: (100, pc) for pc in range(1, 20)}
        chosen = select_candidates(stats, max_candidates=5)
        assert len(chosen) == 5
        assert chosen[0] == 19  # most mispredicting first

    def test_tie_break_is_deterministic(self):
        stats = {0x30: (10, 5), 0x10: (10, 5), 0x20: (10, 5)}
        assert select_candidates(stats) == [0x10, 0x20, 0x30]
