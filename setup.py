"""Legacy setup shim.

The offline environment lacks the ``wheel`` package, so PEP 660 editable
installs fail; ``pip install -e . --no-build-isolation`` falls back to this
shim via ``--no-use-pep517`` / setuptools' legacy develop path.  All project
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
