#!/usr/bin/env python3
"""Observability overhead gate: tracing must stay out of the hot path.

Times the BPU replay pipeline (trace generation + TAGE-SC-L replay —
the workload ``run-all`` spends its time in) with the ``repro.obs``
recorder enabled and disabled (interleaved, min-of-N CPU seconds each) and
fails when the enabled path is more than ``--max-overhead`` slower.  The span
instrumentation sits at stage granularity (one span per replay, not
per branch), so the measured overhead should be indistinguishable from
timing noise; the default 2% threshold is the acceptance bar from the
observability design.

Run:  python tools/check_obs_overhead.py [--events 200000] [--repeats 3]
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))


def workload(n_events: int) -> None:
    """One unit of measured work: generate a trace and replay it."""
    from repro.bpu.runner import simulate
    from repro.bpu.scaling import scaled_tage_sc_l
    from repro.workloads.generator import generate_trace
    from repro.workloads.registry import get_spec

    trace = generate_trace(get_spec("cassandra"), 0, n_events)
    simulate(trace, scaled_tage_sc_l(64))


def _timed(n_events: int, enabled: bool) -> float:
    """CPU seconds for one workload run under the given recorder state.

    CPU time (not wall) is the measured quantity: the question is how
    much work the recorder adds, and ``process_time`` is immune to the
    scheduling noise of shared CI runners that would otherwise swamp a
    2% threshold."""
    from repro import obs

    obs.configure(enabled=enabled)
    obs.drain()  # start with an empty buffer
    t0 = time.process_time()
    workload(n_events)
    return time.process_time() - t0


def measure(n_events: int, repeats: int):
    """Min-of-``repeats`` CPU seconds for (off, on), interleaved.

    Alternating configurations inside each repeat means slow drift in
    machine load (CI neighbours, thermal throttling) lands on both
    paths equally instead of biasing whichever ran second.
    """
    from repro import obs

    try:
        best_off = best_on = float("inf")
        for _ in range(repeats):
            best_off = min(best_off, _timed(n_events, enabled=False))
            best_on = min(best_on, _timed(n_events, enabled=True))
        return best_off, best_on
    finally:
        obs.drain()
        obs.configure_from_env()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--events", type=int, default=200_000,
                        help="trace length per measured run")
    parser.add_argument("--repeats", type=int, default=5,
                        help="repeats per configuration (min is kept)")
    parser.add_argument("--max-overhead", type=float, default=0.02,
                        help="fail above this fractional slowdown")
    args = parser.parse_args(argv)

    # Warm both paths once so imports and caches don't skew the first
    # measured repeat.
    measure(args.events // 10, repeats=1)

    off, on = measure(args.events, repeats=args.repeats)
    overhead = (on - off) / off if off > 0 else 0.0

    print(f"obs overhead: off {off:.3f}s CPU, on {on:.3f}s CPU "
          f"({100 * overhead:+.2f}%, limit +{100 * args.max_overhead:.0f}%)")
    if overhead > args.max_overhead:
        print("FAIL: observability layer is intruding on the hot path — "
              "spans must stay at stage granularity")
        return 1
    print("OK: tracing overhead within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
