#!/usr/bin/env python3
"""Docs-consistency gate: prose must not drift from the code.

Greps the maintained documents (README.md, DESIGN.md, EXPERIMENTS.md,
ROADMAP.md) for three kinds of references and verifies each against the
repository:

* dotted module paths (``repro.obs.trace``) — must resolve to a module
  or package under ``src/``;
* file paths (``src/repro/...``, ``tools/...``, ``examples/...``,
  ``tests/...``) — must exist on disk;
* CLI references (``repro <subcommand>`` and ``--flags`` mentioned near
  them) — must exist in :func:`repro.cli.build_parser`'s option tree.

Any dangling reference fails the build: stale docs are worse than no
docs, because they are trusted.

Run:  python tools/check_docs.py [--list]
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = ROOT / "src"

DOCS = ("README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md")

#: Flags that belong to tools other than ``repro`` (pytest, pip, git...)
#: and are legitimately mentioned in the docs.
FOREIGN_FLAGS = {
    "--maxfail", "--cov", "--user", "--upgrade", "--help",
}


def module_exists(dotted: str) -> bool:
    """True when ``repro.x.y`` resolves to a module, package, or a
    top-level name inside one (``repro.bpu.runner.resolve_kernel``)."""
    parts = dotted.split(".")
    base = SRC.joinpath(*parts)
    if base.with_suffix(".py").exists() or (base / "__init__.py").exists():
        return True
    parent = SRC.joinpath(*parts[:-1])
    name = re.escape(parts[-1])
    for candidate in (parent.with_suffix(".py"), parent / "__init__.py"):
        if candidate.exists():
            return re.search(
                rf"^\s*(?:def {name}\(|class {name}\b|{name}\s*[=:])",
                candidate.read_text(), re.MULTILINE,
            ) is not None
    return False


def _iter_doc_lines():
    for name in DOCS:
        path = ROOT / name
        if not path.exists():
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            yield name, lineno, line


def collect_cli_vocabulary():
    """All subcommand names and option strings of the ``repro`` CLI."""
    sys.path.insert(0, str(SRC))
    from repro.cli import build_parser  # noqa: E402

    parser = build_parser()
    commands: set = set()
    flags: set = set()

    def walk(p: argparse.ArgumentParser) -> None:
        for action in p._actions:  # noqa: SLF001 - argparse has no public API
            flags.update(opt for opt in action.option_strings if opt.startswith("--"))
            if isinstance(action, argparse._SubParsersAction):  # noqa: SLF001
                for name, sub in action.choices.items():
                    commands.add(name)
                    walk(sub)

    walk(parser)
    return commands, flags


def check() -> list:
    """Return (doc, lineno, message) for every dangling reference."""
    commands, flags = collect_cli_vocabulary()
    problems = []

    module_re = re.compile(r"\brepro(?:\.[a-z_][a-z0-9_]*)+\b")
    path_re = re.compile(r"\b(?:src|tools|examples|tests)/[\w./-]+\.\w+")
    flag_re = re.compile(r"(?<![\w-])--[a-z][a-z0-9-]*\b")
    cmd_re = re.compile(r"`(?:python -m repro\.cli|repro) ([a-z-]+)")

    for doc, lineno, line in _iter_doc_lines():
        for match in module_re.finditer(line):
            dotted = match.group(0)
            # "repro.cli <command>" style mentions name the module itself.
            if not module_exists(dotted):
                problems.append((doc, lineno, f"module not found: {dotted}"))
        for match in path_re.finditer(line):
            rel = match.group(0)
            if not (ROOT / rel).exists():
                problems.append((doc, lineno, f"path not found: {rel}"))
        for match in cmd_re.finditer(line):
            cmd = match.group(1)
            if cmd not in commands:
                problems.append((doc, lineno, f"unknown repro subcommand: {cmd}"))
        # Only hold lines that talk about this CLI to its flag vocabulary.
        if "repro" in line:
            for match in flag_re.finditer(line):
                flag = match.group(0)
                if flag not in flags and flag not in FOREIGN_FLAGS:
                    problems.append((doc, lineno, f"unknown repro flag: {flag}"))
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--list", action="store_true",
        help="print every reference checked (debugging aid)",
    )
    args = parser.parse_args(argv)

    problems = check()
    checked = sum(1 for _ in _iter_doc_lines())
    print(f"docs-consistency: scanned {checked} lines across "
          f"{sum(1 for d in DOCS if (ROOT / d).exists())} documents")
    if args.list or problems:
        for doc, lineno, message in problems:
            print(f"  {doc}:{lineno}: {message}")
    if problems:
        print(f"FAIL: {len(problems)} dangling reference(s) — update the docs "
              "or the code they describe")
        return 1
    print("OK: no dangling references")
    return 0


if __name__ == "__main__":
    sys.exit(main())
