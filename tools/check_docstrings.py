#!/usr/bin/env python3
"""Docstring-coverage gate: every public API should explain itself.

Walks ``src/repro`` with ``ast`` and measures the fraction of public
modules, classes, and functions/methods that carry a docstring.  Short
function bodies (two statements or fewer — accessors, trivial interface
implementations like a predictor's ``reset``) are exempt: forcing a
docstring onto ``return self._x`` documents nothing.  The threshold is
a ratchet: it sits just below the current coverage, so new undocumented
code fails CI while the bar only ever moves up.

Run:  python tools/check_docstrings.py [--min-coverage 0.9] [--list]
"""

from __future__ import annotations

import argparse
import ast
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = ROOT / "src" / "repro"

#: The ratchet. Raise it when coverage improves; never lower it.
DEFAULT_MIN_COVERAGE = 0.98

#: Function bodies at or below this many statements are exempt.
TRIVIAL_BODY_STATEMENTS = 2


def is_public(name: str) -> bool:
    return not name.startswith("_")


def _is_trivial(node: ast.AST) -> bool:
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return False
    body = node.body
    if body and isinstance(body[0], ast.Expr) and isinstance(body[0].value, ast.Constant):
        body = body[1:]  # don't count an existing docstring as a statement
    return len(body) <= TRIVIAL_BODY_STATEMENTS


def iter_definitions(path: pathlib.Path):
    """Yield (qualname, has_docstring) for the module and each public def."""
    tree = ast.parse(path.read_text(), filename=str(path))
    module = str(path.relative_to(ROOT))
    results = [(module, ast.get_docstring(tree) is not None)]

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                name = f"{prefix}{child.name}"
                if is_public(child.name) and not _is_trivial(child):
                    results.append(
                        (f"{module}:{name}", ast.get_docstring(child) is not None)
                    )
                # Private classes keep private docs policy too: the
                # underscore convention applies to the whole subtree.
                if isinstance(child, ast.ClassDef) and is_public(child.name):
                    visit(child, f"{name}.")

    visit(tree, "")
    yield from results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--min-coverage", type=float, default=DEFAULT_MIN_COVERAGE,
        help="fail below this fraction of documented definitions",
    )
    parser.add_argument(
        "--list", action="store_true", help="print every undocumented definition"
    )
    args = parser.parse_args(argv)

    documented = 0
    missing: list[str] = []
    for path in sorted(SRC.rglob("*.py")):
        for qualname, has_doc in iter_definitions(path):
            if has_doc:
                documented += 1
            else:
                missing.append(qualname)

    total = documented + len(missing)
    coverage = documented / total if total else 1.0
    print(f"docstring coverage: {documented}/{total} public definitions "
          f"({100 * coverage:.1f}%, ratchet {100 * args.min_coverage:.1f}%)")
    if args.list or coverage < args.min_coverage:
        for name in missing:
            print(f"  missing: {name}")
    if coverage < args.min_coverage:
        print("FAIL: document the definitions above (or raise their visibility "
              "into the underscore namespace)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
