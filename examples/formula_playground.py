#!/usr/bin/env python3
"""Explore the extended-ROMBF formula machinery on its own.

Shows the four single-unit operations (paper Fig 8), the tree evaluator
and its 19-gate-delay hardware cost (Fig 9), the 15-bit encoding inside
a brhint (Fig 11), and Algorithm 1 recovering a planted formula from
noisy samples via randomized formula testing (§III-B).

Run:  python examples/formula_playground.py
"""

import numpy as np

from repro.core.formulas import (
    AND,
    CNIMPL,
    IMPL,
    OR,
    FormulaTree,
    formula_space_size,
    random_formula,
)
from repro.core.geometric import geometric_lengths
from repro.core.hashing import fold_history
from repro.core.hints import BIAS_NONE, BrHint
from repro.core.search import FormulaSearch


def main() -> None:
    print("single-unit ops on (a, b):")
    for op, name in [(AND, "and"), (OR, "or"), (IMPL, "impl"), (CNIMPL, "cnimpl")]:
        tree = FormulaTree(ops=(op,), n_inputs=2)
        table = "".join(str(tree.evaluate(h)) for h in range(4))
        print(f"  {name:7s} truth table (b1 b0 = 00,01,10,11): {table}")

    print("\nan 8-input extended ROMBF:")
    tree = FormulaTree(ops=(OR, AND, IMPL, CNIMPL, AND, OR, IMPL), invert=True)
    print(f"  expression : {tree.to_expression()}")
    print(f"  encoding   : {tree.encode():#017b} ({tree.storage_bits()} bits)")
    print(f"  gate delay : {tree.gate_delay()} (paper: 19)")
    print(f"  search space: {formula_space_size(8):,} encodings")

    print("\ngeometric candidate history lengths (a=8, N=1024, m=16):")
    print(f"  {geometric_lengths()}")

    print("\nhashing a 64-bit history into the 8-bit formula input:")
    history = 0xDEADBEEF_CAFEF00D
    for length in (8, 29, 64):
        print(f"  fold(history, {length:3d}) = {fold_history(history, length):#04x}")

    print("\nAlgorithm 1 + randomized testing recovering a planted formula:")
    rng = np.random.default_rng(42)
    planted = random_formula(rng)
    table = planted.truth_table()
    taken = {h: 20 for h in range(256) if table[h]}
    nottaken = {h: 20 for h in range(256) if not table[h]}
    # corrupt a few entries to emulate noise
    for h in list(taken)[:5]:
        nottaken[h] = 3
    for fraction in (0.001, 0.01, 1.0):
        search = FormulaSearch(fraction=fraction)
        result = search.find_best_formula(taken, nottaken)
        print(f"  explored {100 * fraction:6.1f}% of formulas -> "
              f"{result.mispredictions} profile mispredictions "
              f"({result.search_seconds * 1000:.1f} ms)")

    print("\npacking the winner into a brhint:")
    result = FormulaSearch(fraction=0.01).find_best_formula(taken, nottaken)
    hint = BrHint(
        history_index=4,  # history length 29
        formula_bits=result.formula.encode() if result.formula else 0,
        bias=BIAS_NONE,
        pc_offset=0x7B,
    )
    print(f"  encoded brhint = {hint.encode():#011x} "
          f"(33 bits: 4 history + 15 formula + 2 bias + 12 pc)")
    decoded = BrHint.decode(hint.encode())
    print(f"  decodes to history length {decoded.history_length}, "
          f"formula {decoded.formula().to_expression()}")


if __name__ == "__main__":
    main()
