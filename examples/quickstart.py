#!/usr/bin/env python3
"""Quickstart: optimize one application with Whisper, end to end.

Mirrors the paper's usage model (Fig 10):

1. run the app in "production" and collect a profile (trace + baseline
   predictor accuracy — the Intel PT + LBR roles),
2. offline branch analysis: per hard-to-predict branch, find the best
   geometric history length and Boolean formula (Algorithm 1 with
   randomized formula testing),
3. inject brhint instructions into predecessor blocks at link time,
4. deploy: rerun on a *different* input with the hint buffer active.

Run:  python examples/quickstart.py
"""

from repro import (
    BranchProfile,
    WhisperOptimizer,
    generate_trace,
    get_program,
    get_spec,
    scaled_tage_sc_l,
    simulate,
)

N_EVENTS = 60_000
WARMUP = 0.3


def main() -> None:
    spec = get_spec("mysql")
    program = get_program(spec)
    print(f"app: {spec.name} — {program.n_conditional_branches} static conditional "
          f"branches, {program.static_instructions} static instructions")

    # 1. Profile collection on the training input.
    train_trace = generate_trace(spec, input_id=0, n_events=N_EVENTS)
    profile = BranchProfile.collect([train_trace], lambda: scaled_tage_sc_l(64))
    print(f"profile: {profile.total_mispredictions} baseline mispredictions over "
          f"{profile.total_executions} branch executions")

    # 2 + 3. Offline analysis and link-time injection.
    whisper = WhisperOptimizer()
    trained, placement, runtime = whisper.optimize(profile, program)
    print(f"analysis: {trained.n_hints}/{trained.candidates_considered} branches "
          f"hinted in {trained.training_seconds:.1f}s "
          f"({trained.formulas_explored} formulas tested)")
    print(f"injection: {placement.n_hints} brhints placed "
          f"(+{100 * placement.static_overhead(program):.2f}% static instructions, "
          f"{len(placement.dropped)} dropped)")

    # Peek at a few hints.
    for pc, hint in list(trained.hints.items())[:3]:
        kind = hint.result.bias or hint.result.formula.to_expression()
        print(f"  brhint @pc={pc:#x}: history length {hint.length}, {kind}")

    # 4. Deploy on a different input (the paper's cross-input evaluation).
    test_trace = generate_trace(spec, input_id=1, n_events=N_EVENTS)
    baseline = simulate(test_trace, scaled_tage_sc_l(64)).with_warmup(WARMUP)
    optimized = simulate(
        test_trace, scaled_tage_sc_l(64), runtime=runtime
    ).with_warmup(WARMUP)

    print(f"\nbaseline 64KB TAGE-SC-L: MPKI {baseline.mpki:.2f} "
          f"({baseline.mispredictions} mispredictions)")
    print(f"with Whisper hints:      MPKI {optimized.mpki:.2f} "
          f"({optimized.mispredictions} mispredictions)")
    print(f"misprediction reduction: "
          f"{optimized.misprediction_reduction(baseline):.1f}% "
          f"(paper average: 16.8%)")


if __name__ == "__main__":
    main()
