#!/usr/bin/env python3
"""Tour of the observability layer: spans, counters, traces, reports.

Every expensive stage of the pipeline — trace generation, predictor
replay, Whisper training — records spans and counters through
``repro.obs``.  This example drives a small pipeline by hand and then
inspects what the instrumentation saw:

* run trace generation + baseline replay + Whisper training under a
  fresh recorder and print the span tree the stages produced,
* show the counter totals (events replayed, formulas tested, hints),
* write the events to a JSONL trace file and render the same summary
  the ``repro trace`` CLI prints for a ``run-all``,
* demonstrate the ``REPRO_OBS=off`` no-op path.

Run:  python examples/observability_tour.py
"""

import tempfile
from pathlib import Path

from repro import obs, scaled_tage_sc_l, simulate
from repro.core.whisper import WhisperOptimizer
from repro.obs.report import summarize, summary_lines
from repro.profiling import BranchProfile
from repro.workloads.generator import generate_trace, get_program
from repro.workloads.registry import get_spec

APP = "cassandra"
N_EVENTS = 50_000
WARMUP = 0.3


def run_pipeline() -> None:
    """One app through generate -> baseline -> train -> optimized run."""
    spec = get_spec(APP)
    program = get_program(spec)
    train = generate_trace(spec, 0, N_EVENTS, use_cache=False)
    test = generate_trace(spec, 1, N_EVENTS, use_cache=False)

    profile = BranchProfile.collect([train], lambda: scaled_tage_sc_l(64))
    _, _, runtime = WhisperOptimizer().optimize(profile, program)

    base = simulate(test, scaled_tage_sc_l(64)).with_warmup(WARMUP)
    run = simulate(test, scaled_tage_sc_l(64), runtime=runtime).with_warmup(WARMUP)
    print(f"pipeline: {APP}, {N_EVENTS:,} events/trace, "
          f"{run.misprediction_reduction(base):.1f}% misprediction reduction")


def main() -> None:
    # --- record a pipeline -------------------------------------------------
    obs.configure(enabled=True)  # fresh recorder, ignore REPRO_OBS
    with obs.span("tour", app=APP):
        run_pipeline()

    counters = obs.recorder().counters()
    events = obs.drain()

    # --- the span tree -----------------------------------------------------
    print("\nspan tree (spans >= 5 ms):")
    print(obs.format_tree(events, min_wall=0.005))

    # --- counters ----------------------------------------------------------
    print("\ncounters:")
    for name, value in sorted(counters.items()):
        print(f"  {name:<28s} {value:>14,.0f}")

    # --- trace file + summary (what `repro trace summarize` renders) -------
    with tempfile.TemporaryDirectory() as td:
        path = obs.write_events(Path(td) / obs.TRACE_NAME, events)
        loaded = obs.read_events(path)
        print(f"\ntrace file: {len(loaded)} events, "
              f"{path.stat().st_size:,} bytes")
    print("\nsummary (no task events here, so stages = top-level spans):")
    for line in summary_lines(summarize(events)):
        print(line)

    # --- the off switch ----------------------------------------------------
    obs.configure(enabled=False)
    with obs.span("invisible"):
        pass
    obs.add("invisible.counter")
    assert obs.drain() == [], "disabled recorder must record nothing"
    print("\nREPRO_OBS=off path: spans and counters collapse to no-ops")
    obs.configure_from_env()


if __name__ == "__main__":
    main()
