#!/usr/bin/env python3
"""Tour of the profiling substrate: PT packets, LBR sampling, validation.

The paper's pipeline starts with hardware tracing — Intel PT for the
control-flow stream and LBR for per-branch predictor accuracy, both at
~1 % overhead.  This example exercises the reproduction's equivalents:

* encode a trace into PT-style TNT/TIP packets and measure compression,
* build a Whisper training profile from *sampled* LBR records instead of
  the idealised full-stream profile, and compare the resulting hints,
* run the workload structural health check that calibration relies on.

Run:  python examples/profiling_tour.py
"""

from repro import scaled_tage_sc_l, simulate
from repro.core.whisper import WhisperOptimizer
from repro.profiling import (
    BranchProfile,
    PacketDecoder,
    PacketEncoder,
    collect_lbr_profile,
    sampling_overhead,
)
from repro.workloads.generator import generate_trace, get_program
from repro.workloads.registry import get_spec
from repro.workloads.validation import check_workload

APP = "cassandra"
N_EVENTS = 50_000
WARMUP = 0.3


def main() -> None:
    spec = get_spec(APP)
    program = get_program(spec)
    trace = generate_trace(spec, 0, N_EVENTS)

    # --- Intel PT stand-in -------------------------------------------------
    encoder = PacketEncoder()
    encoded = encoder.encode_trace(trace, tip_every=2048)
    decoded = PacketDecoder().decode(encoded)
    print(f"PT encoding: {len(encoded):,} bytes for {trace.n_conditional:,} "
          f"conditional branches "
          f"({encoder.bytes_per_branch(encoded, trace):.3f} B/branch, "
          f"{decoded.psb_count} sync points, {len(decoded.tips)} TIPs)")
    assert decoded.outcomes_array().sum() == trace.taken[trace.is_conditional].sum()

    # --- LBR-sampled vs full profile ---------------------------------------
    full = BranchProfile.collect([trace], lambda: scaled_tage_sc_l(64))
    sampled = collect_lbr_profile(
        [trace], lambda: scaled_tage_sc_l(64), sample_period=64
    )
    print(f"\nLBR sampling (period 64, ~{100 * sampling_overhead(64):.0f}% of "
          f"branches observed): {sampled.total_executions:,} sampled records "
          f"vs {full.total_executions:,} full")

    test = generate_trace(spec, 1, N_EVENTS)
    base = simulate(test, scaled_tage_sc_l(64)).with_warmup(WARMUP)
    for label, profile in (("full-stream", full), ("LBR-sampled", sampled)):
        trained, _, runtime = WhisperOptimizer().optimize(profile, program)
        run = simulate(test, scaled_tage_sc_l(64), runtime=runtime).with_warmup(WARMUP)
        print(f"  {label:12s}: {trained.n_hints:4d} hints, "
              f"{run.misprediction_reduction(base):5.1f}% reduction")

    # --- workload structural health ----------------------------------------
    result = simulate(trace, scaled_tage_sc_l(64))
    health = check_workload(trace, result)
    print(f"\nworkload health: history entropy "
          f"{health.entropy_bits:.1f}/{health.entropy_bound} bits; "
          f"follower contexts recur for "
          f"{100 * health.recurrence.median_recurring_fraction:.0f}% of executions; "
          f"top-50 branches hold {health.top50_share:.0f}% of mispredictions")


if __name__ == "__main__":
    main()
