#!/usr/bin/env python3
"""Bring your own workload: define an AppSpec, inspect its branches, and
see which of its branch populations Whisper wins on.

Run:  python examples/custom_workload.py
"""

from collections import defaultdict

from repro import AppSpec, scaled_tage_sc_l, simulate
from repro.core.whisper import WhisperOptimizer
from repro.profiling.profile import BranchProfile
from repro.workloads.behaviors import describe
from repro.workloads.generator import generate_trace, get_program

N_EVENTS = 50_000
WARMUP = 0.3


def main() -> None:
    # A bespoke service: modest footprint, heavy long-history correlation.
    spec = AppSpec(
        name="my-service",
        category="datacenter",
        seed=2026,
        n_functions=700,
        n_requests=30,
        footprint_kb=1024,
        zipf_exponent=1.1,
        behavior_mix={
            "always": 0.34,
            "never": 0.10,
            "easy": 0.26,
            "noisy": 0.03,
            "formula": 0.21,
            "pattern": 0.005,
            "loop": 0.05,
            "local": 0.005,
        },
    )
    program = get_program(spec)
    print(f"{spec.name}: {program.n_blocks} blocks, "
          f"{program.n_conditional_branches} conditional branches")

    kinds = defaultdict(int)
    for behavior in program.behaviors:
        if behavior is not None:
            kinds[describe(behavior).split("(")[0]] += 1
    print("branch population:", dict(sorted(kinds.items(), key=lambda kv: -kv[1])))

    train = generate_trace(spec, 0, N_EVENTS)
    test = generate_trace(spec, 1, N_EVENTS)
    profile = BranchProfile.collect([train], lambda: scaled_tage_sc_l(64))

    whisper = WhisperOptimizer()
    trained, placement, runtime = whisper.optimize(profile, program)
    base = simulate(test, scaled_tage_sc_l(64)).with_warmup(WARMUP)
    run = simulate(test, scaled_tage_sc_l(64), runtime=runtime).with_warmup(WARMUP)

    print(f"\nhinted {trained.n_hints} branches "
          f"(+{100 * placement.static_overhead(program):.2f}% static footprint)")
    print(f"baseline MPKI {base.mpki:.2f} -> {run.mpki:.2f} with Whisper "
          f"({run.misprediction_reduction(base):.1f}% fewer mispredictions)")

    # Which hinted branch behaviours did Whisper capture?
    hinted_kinds = defaultdict(int)
    for pc in trained.hints:
        behavior = program.behavior_of_pc(pc)
        if behavior is not None:
            hinted_kinds[describe(behavior).split("(")[0]] += 1
    print("hinted-branch behaviours:", dict(sorted(hinted_kinds.items(), key=lambda kv: -kv[1])))

    # History-length distribution of the accepted hints.
    buckets = defaultdict(int)
    for hint in trained.hints.values():
        buckets[hint.length] += 1
    print("hint history lengths:", dict(sorted(buckets.items())))


if __name__ == "__main__":
    main()
