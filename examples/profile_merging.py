#!/usr/bin/env python3
"""Input sensitivity and profile merging (paper Figs 17-18).

Trains Whisper with a profile from one input and tests on others, then
shows how merging profiles from multiple inputs closes the gap to
input-specific profiles.

Run:  python examples/profile_merging.py
"""

from repro import scaled_tage_sc_l, simulate
from repro.core.whisper import WhisperOptimizer
from repro.profiling.profile import BranchProfile
from repro.workloads.generator import generate_trace, get_program
from repro.workloads.registry import get_spec

APP = "wordpress"
N_EVENTS = 50_000
WARMUP = 0.3


def whisper_runtime(profile, program):
    optimizer = WhisperOptimizer()
    _, _, runtime = optimizer.optimize(profile, program)
    return runtime


def reduction(test_trace, runtime) -> float:
    base = simulate(test_trace, scaled_tage_sc_l(64)).with_warmup(WARMUP)
    run = simulate(test_trace, scaled_tage_sc_l(64), runtime=runtime).with_warmup(WARMUP)
    return run.misprediction_reduction(base)


def main() -> None:
    spec = get_spec(APP)
    program = get_program(spec)
    traces = {i: generate_trace(spec, i, N_EVENTS) for i in range(6)}
    profiles = {
        i: BranchProfile.collect([traces[i]], lambda: scaled_tage_sc_l(64))
        for i in range(5)
    }

    print(f"{APP}: cross-input vs same-input profiles (paper Fig 17)")
    train0 = whisper_runtime(profiles[0], program)
    for test_input in (1, 2, 3):
        cross = reduction(traces[test_input], train0)
        same = reduction(
            traces[test_input], whisper_runtime(profiles[test_input], program)
        )
        print(f"  test input #{test_input}: training-input profile {cross:5.1f}%  "
              f"same-input profile {same:5.1f}%")

    print(f"\nmerging profiles from multiple inputs (paper Fig 18), test on input #5:")
    for level in (1, 2, 3, 4, 5):
        merged = BranchProfile.merge([profiles[i] for i in range(level)])
        value = reduction(traces[5], whisper_runtime(merged, program))
        print(f"  {level} input(s) merged: {value:5.1f}% reduction")


if __name__ == "__main__":
    main()
