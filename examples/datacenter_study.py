#!/usr/bin/env python3
"""A miniature version of the paper's headline evaluation (Figs 12-13).

Compares Whisper against the prior profile-guided techniques (4b/8b
ROMBF), the unlimited MTAGE-SC predictor, and the ideal direction
predictor, on a handful of data center applications — reporting both
misprediction reduction and timing-simulator speedup.

Run:  python examples/datacenter_study.py   (takes a couple of minutes)
"""

from repro import scaled_tage_sc_l, simulate
from repro.bpu import MTageScPredictor
from repro.core.rombf import RombfOptimizer
from repro.core.whisper import WhisperOptimizer
from repro.profiling.profile import BranchProfile
from repro.sim import simulate_timing
from repro.workloads.generator import generate_trace, get_program
from repro.workloads.registry import get_spec

APPS = ("mysql", "cassandra", "kafka")
N_EVENTS = 60_000
WARMUP = 0.3


def evaluate(app: str) -> None:
    spec = get_spec(app)
    program = get_program(spec)
    train = generate_trace(spec, 0, N_EVENTS)
    test = generate_trace(spec, 1, N_EVENTS)
    profile = BranchProfile.collect([train], lambda: scaled_tage_sc_l(64))

    whisper = WhisperOptimizer()
    _, placement, runtime = whisper.optimize(profile, program)
    rombf8 = RombfOptimizer(8)
    rombf8_rt = rombf8.build_runtime(rombf8.train(profile))
    rombf4 = RombfOptimizer(4)
    rombf4_rt = rombf4.build_runtime(rombf4.train(profile))

    base = simulate(test, scaled_tage_sc_l(64))
    runs = {
        "4b-ROMBF": (simulate(test, scaled_tage_sc_l(64), runtime=rombf4_rt), None),
        "8b-ROMBF": (simulate(test, scaled_tage_sc_l(64), runtime=rombf8_rt), None),
        "Whisper": (simulate(test, scaled_tage_sc_l(64), runtime=runtime), placement),
        "MTAGE-SC": (simulate(test, MTageScPredictor()), None),
    }

    base_timing = simulate_timing(test, base, name="base")
    ideal_timing = simulate_timing(test, None, name="ideal")
    base_w = base.with_warmup(WARMUP)

    print(f"\n{app}: baseline 64KB TAGE-SC-L MPKI {base_w.mpki:.2f}")
    print(f"  {'technique':10s} {'reduction%':>10s} {'speedup%':>9s}")
    for name, (run, place) in runs.items():
        timing = simulate_timing(test, run, placement=place, name=name)
        print(f"  {name:10s} {run.with_warmup(WARMUP).misprediction_reduction(base_w):10.1f} "
              f"{timing.speedup_over(base_timing):9.2f}")
    print(f"  {'Ideal':10s} {100.0:10.1f} {ideal_timing.speedup_over(base_timing):9.2f}")


def main() -> None:
    print("paper reference: Whisper reduces 16.8% of mispredictions (avg), "
          "+2.8% speedup;\nROMBF ~8-9% reduction; ideal predictor +12.4% speedup")
    for app in APPS:
        evaluate(app)


if __name__ == "__main__":
    main()
